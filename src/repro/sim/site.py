"""A simulated site: one protocol instance plus its pending buffers.

The paper spawns a thread per received update that blocks until the
activation predicate ``A(m, e)`` turns true (Section II-B).  The
deterministic equivalent used here: updates whose predicate is false go to
a pending buffer, and the buffer is re-scanned after every event that
changes protocol state (an apply, a local write).  Scanning repeats until
a fixed point, since one apply can activate several others.

Fetch requests are buffered the same way when strict remote reads are on
and the requester's dependencies have not yet been applied locally.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.base import CausalProtocol
from repro.core.messages import FetchReply, FetchRequest, UpdateMessage, WriteResult
from repro.errors import SimulationError
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Simulator
from repro.sim.events import (
    ApplyEvent,
    ReceiptEvent,
    RemoteReturnEvent,
    SendEvent,
    Tracer,
)
from repro.sim.network import Network
from repro.types import SiteId, VarId
from repro.verify.history import History


class SimSite:
    """Wires one :class:`CausalProtocol` instance into the simulation."""

    def __init__(
        self,
        protocol: CausalProtocol,
        sim: Simulator,
        network: Network,
        history: Optional[History] = None,
        metrics: Optional[MetricsCollector] = None,
        tracer: Optional[Tracer] = None,
        batch_window: Optional[float] = None,
    ) -> None:
        self.protocol = protocol
        self.site: SiteId = protocol.site
        self.sim = sim
        self.network = network
        self.history = history
        self.metrics = metrics
        self.tracer = tracer
        self.batcher = None
        if batch_window is not None:
            from repro.sim.batching import UpdateBatcher

            self.batcher = UpdateBatcher(
                self.site,
                batch_window,
                lambda delay, fn: sim.schedule(delay, fn),
                self._send_batch,
            )
        #: updates waiting for their activation predicate: (msg, recv time)
        self.pending_updates: List[Tuple[UpdateMessage, float]] = []
        #: fetch requests waiting for strict-mode dependencies
        self.pending_fetches: List[Tuple[FetchRequest, float]] = []
        #: fetch_id -> callback awaiting a FetchReply at this site
        self._fetch_waiters: Dict[int, Callable[[FetchReply], None]] = {}
        #: local reads blocked by can_read_local: (var, callback)
        self._read_waiters: List[Tuple[VarId, Callable[[], None]]] = []
        #: update messages multicast by this site (termination detection)
        self.updates_sent: int = 0
        #: update messages from other sites applied here
        self.updates_applied: int = 0
        network.register(self.site, self._on_message)

    # ------------------------------------------------------------------
    # outbound
    # ------------------------------------------------------------------
    def broadcast_write(self, result: WriteResult, var: VarId) -> None:
        """Hand a write's update messages to the network; record the local
        apply if the variable is locally replicated."""
        for msg in result.messages:
            if self.tracer:
                self.tracer.emit(
                    SendEvent(self.sim.now, self.site, msg.dest, var, msg.write_id)
                )
            self.updates_sent += 1
            if self.batcher is not None:
                self.batcher.enqueue(msg)
            else:
                self.network.send(MetricsCollector.UPDATE, msg, self.site, msg.dest)
        if result.applied_locally:
            self._record_apply(var, result.write_id, self.sim.now)

    def _send_batch(self, batch) -> None:
        self.network.send("update-batch", batch, self.site, batch.dest)

    def send_fetch(
        self, req: FetchRequest, on_reply: Callable[[FetchReply], None]
    ) -> None:
        """Send a remote-read request and register the reply callback."""
        self._fetch_waiters[req.fetch_id] = on_reply
        self.network.send(MetricsCollector.FETCH, req, self.site, req.server)

    def forget_fetch(self, fetch_id: int) -> None:
        """Abandon an outstanding fetch (availability timeout path)."""
        self._fetch_waiters.pop(fetch_id, None)

    # ------------------------------------------------------------------
    # inbound
    # ------------------------------------------------------------------
    def _on_message(self, kind: str, msg: Any) -> None:
        if kind == MetricsCollector.UPDATE:
            self._on_update(msg)
        elif kind == "update-batch":
            self._on_update_batch(msg)
        elif kind == MetricsCollector.FETCH:
            self._on_fetch_request(msg)
        elif kind == MetricsCollector.REPLY:
            self._on_fetch_reply(msg)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown message kind {kind!r}")

    def _on_update_batch(self, batch) -> None:
        if self.tracer:
            self.tracer.emit(
                ReceiptEvent(
                    self.sim.now, self.site, batch.sender, "update-batch", "*"
                )
            )
        for msg in batch.updates:
            self.pending_updates.append((msg, self.sim.now))
        self.drain()

    def _on_update(self, msg: UpdateMessage) -> None:
        if self.tracer:
            self.tracer.emit(
                ReceiptEvent(self.sim.now, self.site, msg.sender, "update", msg.var)
            )
        self.pending_updates.append((msg, self.sim.now))
        self.drain()

    def _on_fetch_request(self, req: FetchRequest) -> None:
        if self.tracer:
            self.tracer.emit(
                ReceiptEvent(self.sim.now, self.site, req.requester, "fetch", req.var)
            )
        self.pending_fetches.append((req, self.sim.now))
        self._serve_ready_fetches()

    def _on_fetch_reply(self, reply: FetchReply) -> None:
        if self.tracer:
            self.tracer.emit(
                ReceiptEvent(
                    self.sim.now, self.site, reply.server, "fetch-reply", reply.var
                )
            )
        waiter = self._fetch_waiters.pop(reply.fetch_id, None)
        if waiter is not None:
            waiter(reply)
        # an unmatched reply is legal: the availability extension abandons
        # fetches that timed out

    # ------------------------------------------------------------------
    # activation machinery
    # ------------------------------------------------------------------
    def drain(self) -> int:
        """Apply every pending update whose activation predicate holds,
        repeating to a fixed point; then serve unblocked fetches.
        Returns the number of updates applied."""
        applied_total = 0
        progress = True
        while progress:
            progress = False
            still: List[Tuple[UpdateMessage, float]] = []
            for msg, recv_time in self.pending_updates:
                if self.protocol.can_apply(msg):
                    self.protocol.apply_update(msg)
                    self._record_apply(msg.var, msg.write_id, recv_time)
                    self.updates_applied += 1
                    applied_total += 1
                    progress = True
                else:
                    still.append((msg, recv_time))
            self.pending_updates = still
        if applied_total:
            self._serve_ready_fetches()
            self._wake_ready_reads()
        return applied_total

    def wait_local_read(self, var: VarId, callback: Callable[[], None]) -> None:
        """Register a local read blocked by ``can_read_local``; the
        callback fires once the local state has caught up (possibly
        immediately)."""
        if self.protocol.can_read_local(var):
            callback()
            return
        self._read_waiters.append((var, callback))

    def _wake_ready_reads(self) -> None:
        still: List[Tuple[VarId, Callable[[], None]]] = []
        for var, callback in self._read_waiters:
            if self.protocol.can_read_local(var):
                callback()
            else:
                still.append((var, callback))
        self._read_waiters = still

    def _serve_ready_fetches(self) -> None:
        still: List[Tuple[FetchRequest, float]] = []
        for req, recv_time in self.pending_fetches:
            if self.protocol.can_serve_fetch(req):
                reply = self.protocol.serve_fetch(req)
                if self.tracer:
                    self.tracer.emit(
                        RemoteReturnEvent(
                            self.sim.now, self.site, req.requester, req.var
                        )
                    )
                self.network.send(
                    MetricsCollector.REPLY, reply, self.site, req.requester
                )
            else:
                still.append((req, recv_time))
        self.pending_fetches = still

    def _record_apply(self, var: VarId, write_id, recv_time: float) -> None:
        now = self.sim.now
        if self.history is not None:
            self.history.record_apply(self.site, write_id, var, now, recv_time)
        if self.metrics is not None:
            self.metrics.on_apply(now - recv_time)
        if self.tracer:
            self.tracer.emit(
                ApplyEvent(now, self.site, var, write_id, write_id.site)
            )

    # ------------------------------------------------------------------
    @property
    def quiescent(self) -> bool:
        """True when nothing is buffered at this site."""
        return (
            not self.pending_updates
            and not self.pending_fetches
            and not self._fetch_waiters
            and not self._read_waiters
            and (self.batcher is None or self.batcher.pending == 0)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimSite {self.site} pending={len(self.pending_updates)}u/"
            f"{len(self.pending_fetches)}f>"
        )
