"""Deterministic discrete-event simulation engine.

A minimal, fast event loop: a binary heap of ``(time, seq, callback)``
entries.  ``seq`` is a global insertion counter, so events at equal
simulated times fire in schedule order — together with seeded RNGs this
makes every run bit-for-bit reproducible.

Time is unitless; the latency models interpret it as milliseconds.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError


class _Scheduled:
    """One scheduled callback.  Heap entries are ``(time, seq, entry)``
    tuples rather than the entries themselves: ``seq`` is unique, so tuple
    comparison never reaches the entry, and ordering stays in C instead of
    a Python-level ``__lt__`` per heap sift."""

    __slots__ = ("time", "seq", "fn", "cancelled", "done")

    def __init__(self, time: float, seq: int, fn: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.done = False


class EventHandle:
    """Handle to a scheduled event, supporting cancellation."""

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: _Scheduled, sim: "Simulator") -> None:
        self._entry = entry
        self._sim = sim

    @property
    def time(self) -> float:
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    def cancel(self) -> None:
        entry = self._entry
        if not entry.cancelled and not entry.done:
            entry.cancelled = True
            self._sim._pending_live -= 1


class Simulator:
    """The discrete-event scheduler."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, _Scheduled]] = []
        self._seq: int = 0
        self._pending_live: int = 0
        self.events_processed: int = 0

    def schedule(self, delay: float, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        entry = _Scheduled(self.now + delay, self._seq, fn)
        self._seq += 1
        heapq.heappush(self._heap, (entry.time, entry.seq, entry))
        self._pending_live += 1
        return EventHandle(entry, self)

    def schedule_at(self, time: float, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` at absolute simulated time ``time``."""
        return self.schedule(time - self.now, fn)

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events.

        O(1): a live counter maintained by ``schedule`` / ``cancel`` /
        ``step``, instead of a scan over the heap (which retains cancelled
        entries until they reach the top).
        """
        return self._pending_live

    def peek_time(self) -> Optional[float]:
        """Simulated time of the next event, or None if the queue is empty."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)[2]
            if entry.cancelled:
                continue
            if entry.time < self.now:
                raise SimulationError(
                    f"time went backwards: {entry.time} < {self.now}"
                )
            self.now = entry.time
            entry.done = True
            self._pending_live -= 1
            self.events_processed += 1
            entry.fn()
            return True
        return False

    def stats(self) -> dict:
        """Scheduler counters, in the shape the ``repro.obs`` registry
        publishes (``Cluster.publish_metrics``)."""
        return {
            "now": self.now,
            "events_processed": self.events_processed,
            "pending": self._pending_live,
        }

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run events until the queue empties, ``until`` time is reached,
        ``max_events`` have fired, or ``stop_when()`` turns true (checked
        after every event).  Returns the number of events processed."""
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                return fired
            if stop_when is not None and stop_when():
                return fired
            nxt = self.peek_time()
            if nxt is None:
                return fired
            if until is not None and nxt > until:
                self.now = until
                return fired
            self.step()
            fired += 1
