"""Network latency models.

All models are seeded through the numpy ``Generator`` the caller passes in,
keeping runs deterministic.  Times are milliseconds.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
import numpy as np

from repro.errors import ConfigurationError
from repro.types import SiteId


class LatencyModel(ABC):
    """One-way message delay between two sites."""

    @abstractmethod
    def sample(self, src: SiteId, dst: SiteId, rng: np.random.Generator) -> float:
        """Draw one delay for a message from ``src`` to ``dst``."""

    def mean(self, src: SiteId, dst: SiteId) -> float:
        """Expected delay (used by availability timeouts and docs)."""
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Fixed delay for every channel — the simplest deterministic model."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise ConfigurationError(f"latency must be >= 0, got {delay}")
        self.delay = delay

    def sample(self, src: SiteId, dst: SiteId, rng: np.random.Generator) -> float:
        return self.delay

    def mean(self, src: SiteId, dst: SiteId) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Uniformly distributed delay in ``[low, high]``."""

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if not (0 <= low <= high):
            raise ConfigurationError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, src: SiteId, dst: SiteId, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def mean(self, src: SiteId, dst: SiteId) -> float:
        return (self.low + self.high) / 2


class LogNormalLatency(LatencyModel):
    """Log-normally distributed delay — heavy-tailed, WAN-like jitter.

    Parameterized by the median delay and a shape ``sigma``.
    """

    def __init__(self, median: float = 1.0, sigma: float = 0.3) -> None:
        if median <= 0 or sigma < 0:
            raise ConfigurationError(
                f"need median > 0 and sigma >= 0, got {median}, {sigma}"
            )
        self.median = median
        self.sigma = sigma
        self._mu = float(np.log(median))

    def sample(self, src: SiteId, dst: SiteId, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self._mu, self.sigma))

    def mean(self, src: SiteId, dst: SiteId) -> float:
        return float(self.median * np.exp(self.sigma**2 / 2))


class MatrixLatency(LatencyModel):
    """Per-pair base delay from an ``n x n`` matrix plus multiplicative
    log-normal jitter.  This is the geo model: the matrix comes from a
    :class:`repro.sim.topology.Topology`."""

    def __init__(self, base: np.ndarray, jitter_sigma: float = 0.1) -> None:
        base = np.asarray(base, dtype=float)
        if base.ndim != 2 or base.shape[0] != base.shape[1]:
            raise ConfigurationError(f"latency matrix must be square, got {base.shape}")
        if np.any(base < 0):
            raise ConfigurationError("latency matrix entries must be >= 0")
        self.base = base
        self.jitter_sigma = jitter_sigma

    def sample(self, src: SiteId, dst: SiteId, rng: np.random.Generator) -> float:
        b = float(self.base[src, dst])
        if self.jitter_sigma == 0:
            return b
        return b * float(rng.lognormal(0.0, self.jitter_sigma))

    def mean(self, src: SiteId, dst: SiteId) -> float:
        return float(self.base[src, dst]) * float(
            np.exp(self.jitter_sigma**2 / 2)
        )


def random_wan(
    n: int,
    seed: int = 0,
    low: float = 1.0,
    high: float = 150.0,
    jitter_sigma: float = 0.2,
) -> MatrixLatency:
    """An adversarial random WAN: independently drawn, asymmetric per-pair
    delays in ``[low, high]`` ms plus log-normal jitter.

    This is the topology that smoked out the remote-read gaps (DESIGN.md
    §2a): wildly asymmetric one-way delays maximize reordering between
    update, fetch, and relay paths.  Used across the fuzz suites and the
    ablation benchmarks.
    """
    if n <= 0:
        raise ConfigurationError(f"need n >= 1 sites, got {n}")
    rng = np.random.default_rng(seed)
    base = rng.uniform(low, high, size=(n, n))
    np.fill_diagonal(base, 0.0)
    return MatrixLatency(base, jitter_sigma)


def make_latency(spec: "LatencyModel | str | float | None") -> LatencyModel:
    """Coerce a latency spec: a model instance, a float (constant delay),
    one of the names ``"constant"``/``"uniform"``/``"lognormal"``, or None
    (defaults to 1 ms constant)."""
    if spec is None:
        return ConstantLatency(1.0)
    if isinstance(spec, LatencyModel):
        return spec
    if isinstance(spec, (int, float)):
        return ConstantLatency(float(spec))
    if spec == "constant":
        return ConstantLatency()
    if spec == "uniform":
        return UniformLatency()
    if spec == "lognormal":
        return LogNormalLatency()
    raise ConfigurationError(f"unknown latency spec {spec!r}")
