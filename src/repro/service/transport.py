"""Transports for the KV service: real TCP and an in-process loopback.

Both speak the same interface — a :class:`Transport` can ``listen`` at an
address (frames arrive on per-connection handler tasks) and ``connect`` to
one (returning a bidirectional :class:`Connection` of whole frames).  The
server and client layers are written against this interface only, so every
test can run the full service stack over :class:`LoopbackTransport` with no
sockets, deterministically, and with the causal sanitizer shadow-checking
the very same code paths that run over TCP in production.

The loopback is not a shortcut past the wire format: every frame crosses a
full :func:`repro.service.wire.encode_frame` → decode round trip, so codec
bugs (unserializable metadata, field drift) fail loopback tests too.  It
also implements :meth:`LoopbackTransport.kill` — an abrupt site failure
that drops the listener and severs every established connection — which is
what the chaos tests and ``repro-kv smoke`` use to exercise failover.
"""

from __future__ import annotations

import asyncio
from abc import ABC, abstractmethod
from collections import deque
from typing import Any, Awaitable, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ServiceError
from repro.service import wire

#: per-connection frame handler installed by ``Transport.listen``
ConnHandler = Callable[["Connection"], Awaitable[None]]

#: sentinel queued by the loopback to mark an orderly or severed EOF
_EOF = object()

#: bytes per TCP read; large enough to swallow a whole coalesced batch
_READ_CHUNK = 65536


class WireMeter:
    """Bytes-on-the-wire counters for one transport instance.

    Caches the two labelled counter handles
    (``wire_bytes_sent_total{transport=...}`` /
    ``wire_bytes_received_total{transport=...}``) so the per-frame cost
    is one ``inc`` — connections carry a meter reference (or ``None``,
    the zero-cost-off discipline of the obs layer).

    Sent bytes are additionally attributed *per frame kind* under
    ``wire_frame_bytes_total{kind=...,transport=...}`` (a deliberately
    distinct name: three consumers sum every counter prefixed
    ``wire_bytes_sent_total`` and must not double-count).  The split is
    sender-side only — a TCP receiver meters raw segments before any
    frame boundary exists — which loses nothing: every frame some
    connection received, some connection sent.
    """

    __slots__ = ("sent", "received", "_metrics", "_transport", "_kinds")

    def __init__(self, metrics: Any, transport: str) -> None:
        self.sent = metrics.counter("wire_bytes_sent_total", transport=transport)
        self.received = metrics.counter(
            "wire_bytes_received_total", transport=transport
        )
        self._metrics = metrics
        self._transport = transport
        self._kinds: Dict[str, Any] = {}

    def kind(self, frame_type: str) -> Any:
        """The cached ``wire_frame_bytes_total`` counter handle for one
        frame kind; the cache keeps the steady-state cost at one dict
        hit + one ``inc`` per frame."""
        counter = self._kinds.get(frame_type)
        if counter is None:
            counter = self._metrics.counter(
                "wire_frame_bytes_total",
                transport=self._transport,
                kind=frame_type,
            )
            self._kinds[frame_type] = counter
        return counter


def _decode_annotated(body: bytes) -> Dict[str, Any]:
    """Decode one frame body, annotating self-contained repl frames
    with their raw wire bytes under the local ``_raw`` key.

    A durable receiver logs those bytes to its WAL verbatim
    (:meth:`SiteWal.append_raw`) instead of re-encoding the decoded
    update — the re-encode is most of a WAL append's CPU cost.  Only
    the plain repl kinds qualify: a ``repl.delta`` body diffs against
    per-connection chain state and cannot decode standalone, so it is
    never annotated.  ``_raw`` is a receive-side annotation, not a wire
    field — the ingest path pops it before the frame goes anywhere.
    """
    frame = wire.decode_body(body)
    t = frame.get("t")
    if t == "repl" or t == "repl.t":
        frame["_raw"] = body
    return frame


class Connection(ABC):
    """One bidirectional, ordered stream of frames.

    Every connection carries a *codec* — :data:`wire.JSON_CODEC` until
    :meth:`negotiate` switches it (the WIRE_VERSION 3+ handshake).  The
    codec governs how *this side encodes*; inbound frames are decoded by
    sniffing, so a connection can receive binary frames before (or
    without ever) switching its own send side.  Alongside the codec a
    connection records the *agreed capability* of the handshake — the
    feature gates (batching at >= 3, delta/interning at >= 4) read that,
    never the codec, because one byte codec serves several capability
    levels.
    """

    #: active send codec; class-level default, shadowed by negotiate()
    _codec: Any = wire.JSON_CODEC
    #: negotiated connection capability (min of both sides' ``cv``);
    #: the pre-handshake default is the v2 profile
    _agreed: int = wire.JSON_WIRE_VERSION
    #: byte counters, set by the owning transport when it has a registry
    _meter: Optional[WireMeter] = None

    @property
    def codec(self) -> Any:
        return self._codec

    @property
    def wire_version(self) -> int:
        """The send codec's native profile: 2 (JSON) or 3 (binary).
        Gate features on :attr:`agreed_version`, not this."""
        return self._codec.version

    @property
    def agreed_version(self) -> int:
        """The handshake-agreed capability of this connection."""
        return self._agreed

    def negotiate(self, codec: Any, agreed: Optional[int] = None) -> None:
        """Switch this side's send codec for all subsequent frames,
        recording the handshake-agreed capability when given."""
        self._codec = codec
        if agreed is not None:
            self._agreed = agreed

    @abstractmethod
    async def send(self, frame: Dict[str, Any]) -> None:
        """Send one frame.  Raises ``ConnectionError`` once the peer is
        gone — callers treat that as "site unreachable" and fail over."""

    async def send_many(self, frames: List[Dict[str, Any]]) -> None:
        """Send a batch of frames with at most one flush (writev-style
        coalescing on transports that buffer).  The default sends them
        one by one — the v2 profile."""
        for frame in frames:
            await self.send(frame)

    @abstractmethod
    async def recv(self) -> Optional[Dict[str, Any]]:
        """Receive the next frame, or ``None`` on EOF / severed peer."""

    async def recv_many(self) -> Optional[List[Dict[str, Any]]]:
        """Receive every frame already available, waiting only for the
        first.  Returns a non-empty list, or ``None`` on EOF.  Frames
        that arrived *before* an EOF are still delivered; the EOF is
        reported by the next call."""
        frame = await self.recv()
        return None if frame is None else [frame]

    @abstractmethod
    async def close(self) -> None:
        """Close this side; the peer's ``recv`` returns ``None``."""

    @property
    @abstractmethod
    def peer(self) -> str:
        """The remote address, for diagnostics."""


class Listener(ABC):
    @abstractmethod
    async def close(self) -> None:
        """Stop accepting; established connections are left to their
        handlers (``kill`` is the abrupt variant, loopback only)."""


class Transport(ABC):
    @abstractmethod
    async def listen(self, address: str, handler: ConnHandler) -> Listener:
        """Serve ``address``; each inbound connection runs ``handler`` in
        its own task until the handler returns or the connection dies."""

    @abstractmethod
    async def connect(self, address: str) -> Connection:
        """Open a connection.  Raises ``ConnectionError`` when the address
        is not listening (a dead or killed site)."""


# ======================================================================
# loopback
# ======================================================================
class _LoopbackConnection(Connection):
    """One endpoint of an in-process connection pair.

    ``_rx`` receives frames the peer sent; ``_tx`` is the peer's ``_rx``.
    Frames are round-tripped through the wire codec on send, so the bytes
    that *would* hit a socket are exactly what the receiver decodes.
    """

    def __init__(self, peer_name: str, delay: float = 0.0) -> None:
        self._rx: asyncio.Queue = asyncio.Queue()
        self._peer: Optional["_LoopbackConnection"] = None
        self._peer_name = peer_name
        self._closed = False
        #: artificial one-way delivery delay in seconds (0 = immediate);
        #: models WAN latency so loopback benches can reach the regime
        #: where unacked windows — and so causal metadata — grow
        self._delay = delay
        self._pending: Optional[asyncio.Queue] = None
        self._pump: Optional[asyncio.Task] = None

    def _enqueue(self, item: Any) -> None:
        """Hand ``item`` to this side's receive queue, after this
        connection's one-way delay when one is configured.  The pump
        task drains in send order with monotone due times, so FIFO per
        connection is preserved exactly."""
        if self._delay <= 0.0:
            self._rx.put_nowait(item)
            return
        if self._pending is None:
            self._pending = asyncio.Queue()
            self._pump = asyncio.ensure_future(self._run_pump())
        self._pending.put_nowait(
            (asyncio.get_running_loop().time() + self._delay, item)
        )

    async def _run_pump(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            due, item = await self._pending.get()
            wait = due - loop.time()
            if wait > 0:
                await asyncio.sleep(wait)
            self._rx.put_nowait(item)

    async def send(self, frame: Dict[str, Any]) -> None:
        peer = self._peer
        if self._closed or peer is None or peer._closed:
            raise ConnectionResetError(f"loopback peer {self._peer_name} is gone")
        # full codec round trip: the bytes that *would* hit a socket are
        # exactly what the receiver decodes, under the active codec
        encoded = wire.encode_frame(frame, codec=self._codec)
        meter = self._meter
        if meter is not None:
            meter.sent.inc(len(encoded))
            meter.received.inc(len(encoded))
            meter.kind(frame["t"]).inc(len(encoded))
        peer._enqueue(_decode_annotated(encoded[4:]))

    async def send_many(self, frames: List[Dict[str, Any]]) -> None:
        peer = self._peer
        if self._closed or peer is None or peer._closed:
            raise ConnectionResetError(f"loopback peer {self._peer_name} is gone")
        # one liveness check for the whole batch; each frame still
        # round-trips the codec, and the receiver wakes once (the first
        # put wakes it, the rest land before it runs)
        codec = self._codec
        enqueue = peer._enqueue
        meter = self._meter
        total = 0
        for frame in frames:
            encoded = wire.encode_frame(frame, codec=codec)
            total += len(encoded)
            if meter is not None:
                meter.kind(frame["t"]).inc(len(encoded))
            enqueue(_decode_annotated(encoded[4:]))
        if meter is not None:
            meter.sent.inc(total)
            meter.received.inc(total)

    async def recv(self) -> Optional[Dict[str, Any]]:
        if self._closed and self._rx.empty():
            return None
        item = await self._rx.get()
        return None if item is _EOF else item

    async def recv_many(self) -> Optional[List[Dict[str, Any]]]:
        first = await self.recv()
        if first is None:
            return None
        frames = [first]
        rx = self._rx
        while not rx.empty():
            item = rx.get_nowait()
            if item is _EOF:
                # deliver the frames that beat the EOF; re-queue it so
                # the next recv reports the close
                rx.put_nowait(_EOF)
                break
            frames.append(item)
        return frames

    async def close(self) -> None:
        self._sever()
        peer = self._peer
        if peer is not None and not peer._closed:
            # orderly EOF travels the delayed path, behind in-flight frames
            peer._enqueue(_EOF)

    def _sever(self) -> None:
        """Mark dead and unblock a pending ``recv`` on this side.
        Abrupt: delayed frames still in flight are lost (the pump dies
        with the connection), like a cut cable."""
        if not self._closed:
            self._closed = True
            if self._pump is not None:
                self._pump.cancel()
                self._pump = None
            self._rx.put_nowait(_EOF)

    @property
    def peer(self) -> str:
        return self._peer_name


class _LoopbackListener(Listener):
    def __init__(self, transport: "LoopbackTransport", address: str) -> None:
        self._transport = transport
        self._address = address

    async def close(self) -> None:
        self._transport._handlers.pop(self._address, None)


class LoopbackTransport(Transport):
    """Deterministic in-process transport (see module docstring).

    Single-event-loop only.  Every established connection endpoint is
    tracked per listening address so :meth:`kill` can sever them all.
    """

    def __init__(self, metrics: Any = None, delay: float = 0.0) -> None:
        self._handlers: Dict[str, ConnHandler] = {}
        #: established endpoints per server address, for kill()
        self._endpoints: Dict[str, Set[_LoopbackConnection]] = {}
        self._tasks: Set[asyncio.Task] = set()
        #: one-way frame delivery delay (seconds) applied to every
        #: connection — the WAN-latency knob of the metadata-bound bench
        self.delay = delay
        self._meter = (
            None if metrics is None else WireMeter(metrics, "loopback")
        )

    async def listen(self, address: str, handler: ConnHandler) -> Listener:
        if address in self._handlers:
            raise ServiceError(f"loopback address {address!r} already listening")
        self._handlers[address] = handler
        self._endpoints.setdefault(address, set())
        return _LoopbackListener(self, address)

    async def connect(self, address: str) -> Connection:
        handler = self._handlers.get(address)
        if handler is None:
            raise ConnectionRefusedError(f"no loopback listener at {address!r}")
        client_end = _LoopbackConnection(peer_name=address, delay=self.delay)
        server_end = _LoopbackConnection(peer_name="client", delay=self.delay)
        client_end._peer = server_end
        server_end._peer = client_end
        client_end._meter = self._meter
        server_end._meter = self._meter
        self._endpoints[address].update((client_end, server_end))
        task = asyncio.ensure_future(handler(server_end))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return client_end

    def kill(self, address: str) -> None:
        """Abrupt site failure: stop listening at ``address`` and sever
        every connection established through it (both endpoints — in-flight
        frames are lost, pending sends raise, pending recvs return EOF)."""
        self._handlers.pop(address, None)
        for end in self._endpoints.pop(address, set()):
            end._sever()

    async def close(self) -> None:
        for address in list(self._handlers):
            self.kill(address)
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass


# ======================================================================
# TCP
# ======================================================================
def split_address(address: str) -> Tuple[str, int]:
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ServiceError(f"TCP address must be host:port, got {address!r}")
    return host, int(port)


class _TcpConnection(Connection):
    """Frames over one TCP stream, with its own read buffer so a batch
    of frames that arrived in one segment decodes without extra reads,
    and coalesced writes so a batch flushes with one ``drain``."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter, name: str
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._name = name
        self._buf = bytearray()
        self._frames: deque = deque()

    async def send(self, frame: Dict[str, Any]) -> None:
        encoded = wire.encode_frame(frame, codec=self._codec)
        if self._meter is not None:
            self._meter.sent.inc(len(encoded))
            self._meter.kind(frame["t"]).inc(len(encoded))
        self._writer.write(encoded)
        await self._writer.drain()

    async def send_many(self, frames: List[Dict[str, Any]]) -> None:
        if not frames:
            return
        codec = self._codec
        encode = wire.encode_frame
        meter = self._meter
        # one writev-style buffer append, ONE drain for the whole batch —
        # this is the flush the per-frame path pays once per frame
        if meter is None:
            batch = b"".join(encode(f, codec=codec) for f in frames)
        else:
            parts = []
            for frame in frames:
                encoded = encode(frame, codec=codec)
                meter.kind(frame["t"]).inc(len(encoded))
                parts.append(encoded)
            batch = b"".join(parts)
            meter.sent.inc(len(batch))
        self._writer.write(batch)
        await self._writer.drain()

    async def _fill(self) -> bool:
        """Read one chunk into the buffer; False on EOF/reset."""
        try:
            data = await self._reader.read(_READ_CHUNK)
        except (ConnectionError, OSError):
            return False
        if not data:
            return False
        if self._meter is not None:
            self._meter.received.inc(len(data))
        self._buf += data
        return True

    def _parse(self) -> None:
        """Decode every complete frame in the buffer into ``_frames``."""
        buf = self._buf
        pos = 0
        end = len(buf)
        while end - pos >= 4:
            body_len = wire.frame_length(bytes(buf[pos : pos + 4]))
            if end - pos - 4 < body_len:
                break
            self._frames.append(
                _decode_annotated(bytes(buf[pos + 4 : pos + 4 + body_len]))
            )
            pos += 4 + body_len
        if pos:
            del buf[:pos]

    async def recv(self) -> Optional[Dict[str, Any]]:
        while not self._frames:
            if not await self._fill():
                return None
            self._parse()
        return self._frames.popleft()

    async def recv_many(self) -> Optional[List[Dict[str, Any]]]:
        while not self._frames:
            if not await self._fill():
                return None
            self._parse()
        frames = list(self._frames)
        self._frames.clear()
        return frames

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    @property
    def peer(self) -> str:
        return self._name


class _TcpListener(Listener):
    def __init__(self, server: asyncio.AbstractServer) -> None:
        self._server = server

    async def close(self) -> None:
        self._server.close()
        await self._server.wait_closed()


class TcpTransport(Transport):
    """Frames over asyncio TCP streams; addresses are ``host:port``."""

    def __init__(self, metrics: Any = None) -> None:
        self._meter = None if metrics is None else WireMeter(metrics, "tcp")

    async def listen(self, address: str, handler: ConnHandler) -> Listener:
        host, port = split_address(address)

        async def on_client(
            reader: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            name = "%s:%s" % (writer.get_extra_info("peername") or ("?", "?"))[:2]
            conn = _TcpConnection(reader, writer, name)
            conn._meter = self._meter
            try:
                await handler(conn)
            finally:
                # non-awaiting close: this task may already be cancelled
                # (loop shutdown), and awaiting wait_closed here would
                # re-raise CancelledError out of the finally block
                try:
                    writer.close()
                except (ConnectionError, OSError, RuntimeError):
                    pass

        server = await asyncio.start_server(on_client, host, port)
        return _TcpListener(server)

    async def connect(self, address: str) -> Connection:
        host, port = split_address(address)
        reader, writer = await asyncio.open_connection(host, port)
        conn = _TcpConnection(reader, writer, address)
        conn._meter = self._meter
        return conn


__all__ = [
    "Connection",
    "Listener",
    "Transport",
    "LoopbackTransport",
    "TcpTransport",
    "WireMeter",
    "split_address",
]
