"""Transports for the KV service: real TCP and an in-process loopback.

Both speak the same interface — a :class:`Transport` can ``listen`` at an
address (frames arrive on per-connection handler tasks) and ``connect`` to
one (returning a bidirectional :class:`Connection` of whole frames).  The
server and client layers are written against this interface only, so every
test can run the full service stack over :class:`LoopbackTransport` with no
sockets, deterministically, and with the causal sanitizer shadow-checking
the very same code paths that run over TCP in production.

The loopback is not a shortcut past the wire format: every frame crosses a
full :func:`repro.service.wire.encode_frame` → decode round trip, so codec
bugs (unserializable metadata, field drift) fail loopback tests too.  It
also implements :meth:`LoopbackTransport.kill` — an abrupt site failure
that drops the listener and severs every established connection — which is
what the chaos tests and ``repro-kv smoke`` use to exercise failover.
"""

from __future__ import annotations

import asyncio
from abc import ABC, abstractmethod
from typing import Any, Awaitable, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ServiceError
from repro.service import wire

#: per-connection frame handler installed by ``Transport.listen``
ConnHandler = Callable[["Connection"], Awaitable[None]]

#: sentinel queued by the loopback to mark an orderly or severed EOF
_EOF = object()


class Connection(ABC):
    """One bidirectional, ordered stream of frames."""

    @abstractmethod
    async def send(self, frame: Dict[str, Any]) -> None:
        """Send one frame.  Raises ``ConnectionError`` once the peer is
        gone — callers treat that as "site unreachable" and fail over."""

    @abstractmethod
    async def recv(self) -> Optional[Dict[str, Any]]:
        """Receive the next frame, or ``None`` on EOF / severed peer."""

    @abstractmethod
    async def close(self) -> None:
        """Close this side; the peer's ``recv`` returns ``None``."""

    @property
    @abstractmethod
    def peer(self) -> str:
        """The remote address, for diagnostics."""


class Listener(ABC):
    @abstractmethod
    async def close(self) -> None:
        """Stop accepting; established connections are left to their
        handlers (``kill`` is the abrupt variant, loopback only)."""


class Transport(ABC):
    @abstractmethod
    async def listen(self, address: str, handler: ConnHandler) -> Listener:
        """Serve ``address``; each inbound connection runs ``handler`` in
        its own task until the handler returns or the connection dies."""

    @abstractmethod
    async def connect(self, address: str) -> Connection:
        """Open a connection.  Raises ``ConnectionError`` when the address
        is not listening (a dead or killed site)."""


# ======================================================================
# loopback
# ======================================================================
class _LoopbackConnection(Connection):
    """One endpoint of an in-process connection pair.

    ``_rx`` receives frames the peer sent; ``_tx`` is the peer's ``_rx``.
    Frames are round-tripped through the wire codec on send, so the bytes
    that *would* hit a socket are exactly what the receiver decodes.
    """

    def __init__(self, peer_name: str) -> None:
        self._rx: asyncio.Queue = asyncio.Queue()
        self._peer: Optional["_LoopbackConnection"] = None
        self._peer_name = peer_name
        self._closed = False

    async def send(self, frame: Dict[str, Any]) -> None:
        peer = self._peer
        if self._closed or peer is None or peer._closed:
            raise ConnectionResetError(f"loopback peer {self._peer_name} is gone")
        encoded = wire.encode_frame(frame)
        peer._rx.put_nowait(wire.decode_body(encoded[4:]))

    async def recv(self) -> Optional[Dict[str, Any]]:
        if self._closed and self._rx.empty():
            return None
        item = await self._rx.get()
        return None if item is _EOF else item

    async def close(self) -> None:
        self._sever()
        peer = self._peer
        if peer is not None and not peer._closed:
            peer._rx.put_nowait(_EOF)

    def _sever(self) -> None:
        """Mark dead and unblock a pending ``recv`` on this side."""
        if not self._closed:
            self._closed = True
            self._rx.put_nowait(_EOF)

    @property
    def peer(self) -> str:
        return self._peer_name


class _LoopbackListener(Listener):
    def __init__(self, transport: "LoopbackTransport", address: str) -> None:
        self._transport = transport
        self._address = address

    async def close(self) -> None:
        self._transport._handlers.pop(self._address, None)


class LoopbackTransport(Transport):
    """Deterministic in-process transport (see module docstring).

    Single-event-loop only.  Every established connection endpoint is
    tracked per listening address so :meth:`kill` can sever them all.
    """

    def __init__(self) -> None:
        self._handlers: Dict[str, ConnHandler] = {}
        #: established endpoints per server address, for kill()
        self._endpoints: Dict[str, Set[_LoopbackConnection]] = {}
        self._tasks: Set[asyncio.Task] = set()

    async def listen(self, address: str, handler: ConnHandler) -> Listener:
        if address in self._handlers:
            raise ServiceError(f"loopback address {address!r} already listening")
        self._handlers[address] = handler
        self._endpoints.setdefault(address, set())
        return _LoopbackListener(self, address)

    async def connect(self, address: str) -> Connection:
        handler = self._handlers.get(address)
        if handler is None:
            raise ConnectionRefusedError(f"no loopback listener at {address!r}")
        client_end = _LoopbackConnection(peer_name=address)
        server_end = _LoopbackConnection(peer_name="client")
        client_end._peer = server_end
        server_end._peer = client_end
        self._endpoints[address].update((client_end, server_end))
        task = asyncio.ensure_future(handler(server_end))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return client_end

    def kill(self, address: str) -> None:
        """Abrupt site failure: stop listening at ``address`` and sever
        every connection established through it (both endpoints — in-flight
        frames are lost, pending sends raise, pending recvs return EOF)."""
        self._handlers.pop(address, None)
        for end in self._endpoints.pop(address, set()):
            end._sever()

    async def close(self) -> None:
        for address in list(self._handlers):
            self.kill(address)
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass


# ======================================================================
# TCP
# ======================================================================
def split_address(address: str) -> Tuple[str, int]:
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ServiceError(f"TCP address must be host:port, got {address!r}")
    return host, int(port)


class _TcpConnection(Connection):
    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter, name: str
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._name = name

    async def send(self, frame: Dict[str, Any]) -> None:
        self._writer.write(wire.encode_frame(frame))
        await self._writer.drain()

    async def recv(self) -> Optional[Dict[str, Any]]:
        try:
            prefix = await self._reader.readexactly(4)
            body = await self._reader.readexactly(wire.frame_length(prefix))
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        return wire.decode_body(body)

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    @property
    def peer(self) -> str:
        return self._name


class _TcpListener(Listener):
    def __init__(self, server: asyncio.AbstractServer) -> None:
        self._server = server

    async def close(self) -> None:
        self._server.close()
        await self._server.wait_closed()


class TcpTransport(Transport):
    """Frames over asyncio TCP streams; addresses are ``host:port``."""

    async def listen(self, address: str, handler: ConnHandler) -> Listener:
        host, port = split_address(address)

        async def on_client(
            reader: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            name = "%s:%s" % (writer.get_extra_info("peername") or ("?", "?"))[:2]
            conn = _TcpConnection(reader, writer, name)
            try:
                await handler(conn)
            finally:
                # non-awaiting close: this task may already be cancelled
                # (loop shutdown), and awaiting wait_closed here would
                # re-raise CancelledError out of the finally block
                try:
                    writer.close()
                except (ConnectionError, OSError, RuntimeError):
                    pass

        server = await asyncio.start_server(on_client, host, port)
        return _TcpListener(server)

    async def connect(self, address: str) -> Connection:
        host, port = split_address(address)
        reader, writer = await asyncio.open_connection(host, port)
        return _TcpConnection(reader, writer, address)


__all__ = [
    "Connection",
    "Listener",
    "Transport",
    "LoopbackTransport",
    "TcpTransport",
    "split_address",
]
