"""``repro-kv`` — command-line front end to the networked KV service.

Subcommands::

    serve            run one site's server over TCP until interrupted
                     (``--metrics-port`` adds a Prometheus text endpoint,
                     ``--flight-dir`` a crash post-mortem directory)
    put / get        one operation against a running TCP cluster
    top              polling terminal dashboard over ``sys.stats`` frames:
                     per-site ops/s and errors, the site×site
                     replication-lag matrix, parked depths, dep-log and
                     flight-ring sizes (``--once --json`` for scripts)
    bench            closed-loop YCSB load against a loopback cluster,
                     reporting throughput and latency percentiles
    chaos-kill-site  send the chaos kill frame to one TCP site
    recover          offline report of a site's durable state — what a
                     restart from ``--data-dir`` would replay
    smoke            the CI gate: durable 3-site loopback cluster per
                     protocol, sanitizer on, one site killed mid-run,
                     restarted from its WAL, reconverged via gossip —
                     asserts zero causal violations, zero surfaced
                     request errors, and a fresh read of a post-crash
                     write at the revived site
    stats-smoke      the observability CI gate: in-process TCP cluster,
                     Prometheus scrape parsed strictly, ``top``-style
                     snapshot asserting zero lag after quiesce, then a
                     chaos kill whose flight post-mortem must replay

``serve``/``put``/``get``/``top``/``chaos-kill-site`` speak real TCP
(addresses are ``host:port``, repeated ``--site`` flags give the cluster
map); ``bench`` and ``smoke`` build the whole cluster in-process over
the loopback transport, where the causal sanitizer can shadow every
site; ``stats-smoke`` builds an in-process cluster over real TCP so the
scrape and stats paths cross actual sockets.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.core.base import available_protocols
from repro.errors import ServiceUnavailableError, WireError
from repro.obs.export import parse_metric_key
from repro.obs.registry import MetricsRegistry
from repro.service.client import KVClient
from repro.service.durability import FSYNC_MODES, SiteWal, WalCorruptionError
from repro.service.harness import ServiceCluster
from repro.service.loadgen import LoadGenerator
from repro.service.server import SiteServer
from repro.service.transport import TcpTransport
from repro.store.placement import make_placement
from repro.types import SiteId


def _parse_sites(pairs: List[str]) -> Dict[SiteId, str]:
    addresses: Dict[SiteId, str] = {}
    for pair in pairs:
        site, _, address = pair.partition("=")
        if not address:
            raise SystemExit(f"--site wants ID=HOST:PORT, got {pair!r}")
        addresses[int(site)] = address
    return addresses


def _add_cluster_map(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--site",
        action="append",
        default=[],
        metavar="ID=HOST:PORT",
        required=True,
        help="cluster address map entry (repeat per site)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-kv",
        description="networked causal KV service (see docs/service.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    srv = sub.add_parser("serve", help="run one site's TCP server")
    _add_cluster_map(srv)
    srv.add_argument("--me", type=int, required=True, help="this site's ID")
    srv.add_argument("--protocol", default="opt-track", choices=available_protocols())
    srv.add_argument("--variables", type=int, default=16)
    srv.add_argument("--replication-factor", type=int, default=None)
    srv.add_argument("--strict", action="store_true", help="strict remote reads")
    srv.add_argument("--seed", type=int, default=0, help="placement seed")
    srv.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="N",
        help="also serve Prometheus text exposition on 127.0.0.1:N "
        "(0 picks a free port; printed at startup)",
    )
    srv.add_argument(
        "--flight-dir",
        default=".flight",
        metavar="DIR",
        help="where the flight recorder dumps crash post-mortems "
        "('' disables dumps; the in-memory ring stays on)",
    )
    srv.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help="durable site state (WAL + stable-timestamp snapshots); "
        "re-serving from the same DIR recovers and rejoins under a "
        "bumped incarnation epoch (see docs/durability.md)",
    )
    srv.add_argument(
        "--fsync",
        default="group",
        choices=FSYNC_MODES,
        help="WAL fsync policy with --data-dir: 'group' batches fsyncs "
        "off the event loop, 'none' skips them (in-process kills still "
        "lose nothing; only power loss does)",
    )
    srv.add_argument(
        "--snapshot-interval",
        type=float,
        default=None,
        metavar="SECS",
        help="with --data-dir: period between stable-timestamp "
        "snapshots, each retiring the WAL prefix it covers",
    )
    srv.add_argument(
        "--gossip-interval",
        type=float,
        default=None,
        metavar="SECS",
        help="enable gossip anti-entropy: period between watermark "
        "digests to a (rotating) peer",
    )

    for name, help_text in (("put", "write VAR VALUE"), ("get", "read VAR")):
        p = sub.add_parser(name, help=help_text)
        _add_cluster_map(p)
        p.add_argument("--home", type=int, default=0, help="home (session) site")
        p.add_argument("--variables", type=int, default=16)
        p.add_argument("--replication-factor", type=int, default=None)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("var")
        if name == "put":
            p.add_argument("value")

    kill = sub.add_parser("chaos-kill-site", help="crash one TCP site")
    _add_cluster_map(kill)
    kill.add_argument("--target", type=int, required=True)

    rec = sub.add_parser(
        "recover",
        help="inspect a site's durable state offline (no incarnation bump)",
    )
    rec.add_argument(
        "--data-dir", required=True, metavar="DIR", help="the site's WAL dir"
    )
    rec.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )

    top = sub.add_parser(
        "top", help="live cluster dashboard over sys.stats frames"
    )
    _add_cluster_map(top)
    top.add_argument(
        "--interval", type=float, default=2.0, help="poll period, seconds"
    )
    top.add_argument(
        "--once", action="store_true", help="one poll, print, exit"
    )
    top.add_argument(
        "--json",
        action="store_true",
        help="with --once: machine-readable snapshot on stdout",
    )

    ssmoke = sub.add_parser(
        "stats-smoke",
        help="observability CI gate (TCP cluster, scrape, top, flight)",
    )
    ssmoke.add_argument("--sites", type=int, default=3)
    ssmoke.add_argument("--ops-per-site", type=int, default=60)
    ssmoke.add_argument("--protocol", default="opt-track",
                        choices=available_protocols())
    ssmoke.add_argument("--seed", type=int, default=0)

    bench = sub.add_parser("bench", help="YCSB load against a loopback cluster")
    bench.add_argument("--protocol", default="opt-track", choices=available_protocols())
    bench.add_argument("--sites", type=int, default=3)
    bench.add_argument("--variables", type=int, default=16)
    bench.add_argument("--replication-factor", type=int, default=None)
    bench.add_argument("--workload", default="a", help="YCSB workload a/b/c/d/f")
    bench.add_argument("--ops-per-site", type=int, default=200)
    bench.add_argument(
        "--sessions", type=int, default=1, help="concurrent sessions per site"
    )
    bench.add_argument(
        "--value-size", type=int, default=0, help="pad written values to N bytes"
    )
    bench.add_argument(
        "--codec",
        default="delta",
        choices=("delta", "binary", "json"),
        help="wire profile: delta = WIRE_VERSION 4 metadata-lean, "
        "binary = WIRE_VERSION 3 batched, json = v2 per-frame",
    )
    bench.add_argument("--strict", action="store_true")
    bench.add_argument("--sanitize", action="store_true")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--json", action="store_true", help="emit the metrics snapshot")
    bench.add_argument(
        "--ledger",
        metavar="PATH",
        default=None,
        help="run the full transport x codec reference matrix instead, "
        "write the BENCH_service.json ledger to PATH, and fail unless "
        "the binary profile clears the codec-speedup guardrail and the "
        "delta profile clears the metadata-cell bytes/op guardrail",
    )
    bench.add_argument(
        "--fast",
        action="store_true",
        help="with --ledger: single repeat on a reduced run (smoke use)",
    )

    smoke = sub.add_parser("smoke", help="CI smoke gate (loopback, chaos, sanitizer)")
    smoke.add_argument("--sites", type=int, default=3)
    smoke.add_argument("--ops-per-site", type=int, default=40)
    smoke.add_argument("--seed", type=int, default=0)
    smoke.add_argument(
        "--protocols",
        nargs="*",
        default=["opt-track", "full-track", "opt-track-crp"],
    )
    return parser


# ----------------------------------------------------------------------
# TCP commands
# ----------------------------------------------------------------------
def _placement(args: argparse.Namespace, n: int):
    p = args.replication_factor or n
    return make_placement("round-robin", n, args.variables, p, seed=args.seed)


async def _serve(args: argparse.Namespace) -> int:
    from repro.core.base import ProtocolConfig, protocol_class

    addresses = _parse_sites(args.site)
    n = len(addresses)
    cls = protocol_class(args.protocol)
    placement = _placement(args, n)
    proto = cls(
        ProtocolConfig(
            n=n,
            site=args.me,
            replicas_of=placement,
            strict_remote_reads=args.strict,
        )
    )
    server = SiteServer(
        proto,
        addresses,
        TcpTransport(),
        metrics=MetricsRegistry(),
        flight_dir=args.flight_dir or None,
        data_dir=args.data_dir,
        fsync=args.fsync,
        snapshot_interval=args.snapshot_interval,
        gossip_interval=args.gossip_interval,
    )
    await server.start()
    if args.data_dir is not None:
        print(
            f"site {args.me} durable at {args.data_dir} "
            f"(incarnation {server.epoch}, fsync={args.fsync})"
        )
    print(f"site {args.me} ({args.protocol}) serving at {addresses[args.me]}")
    metrics_server = None
    if args.metrics_port is not None:
        from repro.obs.export import serve_metrics

        # per-scrape refresh recomputes the lag/depth gauges, so the
        # scrape always reflects live link state
        metrics_server = await serve_metrics(
            server.metrics, port=args.metrics_port, refresh=server.refresh_gauges
        )
        port = metrics_server.sockets[0].getsockname()[1]
        print(f"site {args.me} metrics at http://127.0.0.1:{port}/metrics")
    try:
        await server._stopped.wait()
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    finally:
        if metrics_server is not None:
            metrics_server.close()
            await metrics_server.wait_closed()
        await server.stop()
    return 0


async def _one_shot(args: argparse.Namespace) -> int:
    addresses = _parse_sites(args.site)
    placement = _placement(args, len(addresses))
    client = KVClient(addresses, placement, TcpTransport(), home=args.home)
    try:
        if args.command == "put":
            wid = await client.put(args.var, args.value)
            print(f"ok {wid}")
        else:
            value, wid, by = await client.get(args.var)
            print(f"{args.var} = {value!r}  ({wid or 'initial'}, served by s{by})")
    finally:
        await client.close()
    return 0


async def _chaos_kill(args: argparse.Namespace) -> int:
    addresses = _parse_sites(args.site)
    client = KVClient(addresses, {}, TcpTransport(), home=args.target)
    try:
        ok = await client.kill(args.target)
    finally:
        await client.close()
    print(f"site {args.target}: {'killed' if ok else 'unreachable'}")
    return 0 if ok else 1


async def _recover(args: argparse.Namespace) -> int:
    """Offline report of what a restart from ``--data-dir`` would do.

    Read-only (``SiteWal.inspect``): no incarnation bump, no truncation
    — safe to run against a live site's directory, though the tail it
    reports is then already stale.
    """
    import os

    if not os.path.isdir(args.data_dir):
        print(f"recover: no data directory at {args.data_dir}")
        return 1
    try:
        info = await asyncio.to_thread(SiteWal.inspect, args.data_dir)
    except WalCorruptionError as exc:
        print(f"recover: CORRUPT — {exc}")
        return 2
    snapshot = info["snapshot"]
    kinds: Dict[str, int] = {}
    for frame in info["records"]:
        kinds[frame["t"]] = kinds.get(frame["t"], 0) + 1
    origin: Dict[str, int] = {}
    if snapshot is not None:
        it = iter(snapshot.get("origin") or ())
        origin = {str(int(o)): int(wm) for o, wm in zip(it, it)}
    if args.json:
        print(
            json.dumps(
                {
                    "data_dir": args.data_dir,
                    "incarnation": info["incarnation"],
                    "next_incarnation": info["incarnation"] + 1,
                    "snapshot": None
                    if snapshot is None
                    else {
                        "site": int(snapshot["site"]),
                        "incarnation": int(snapshot["inc"]),
                        "applies": int(snapshot["applies"]),
                        "covered_segment": info["covered_segment"],
                        "parked": len(snapshot.get("parked") or ()),
                        "own_log": len(snapshot.get("own") or ()),
                        "origin_watermarks": origin,
                    },
                    "segments": info["segments"],
                    "replay_records": len(info["records"]),
                    "replay_by_kind": kinds,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(f"data dir     {args.data_dir}")
    print(
        f"incarnation  {info['incarnation']} "
        f"(a restart would run as {info['incarnation'] + 1})"
    )
    if snapshot is None:
        print("snapshot     none (cold log: full WAL replay)")
    else:
        print(
            f"snapshot     site {int(snapshot['site'])}, incarnation "
            f"{int(snapshot['inc'])}, {int(snapshot['applies'])} applies, "
            f"{len(snapshot.get('parked') or ())} parked, covers segments "
            f"<= {info['covered_segment']:06d}"
        )
        if origin:
            marks = ", ".join(
                f"s{o}:{wm}"
                for o, wm in sorted(origin.items(), key=lambda kv: int(kv[0]))
            )
            print(f"watermarks   {marks}")
    print(f"segments     {', '.join(info['segments']) or 'none'}")
    if kinds:
        by_kind = ", ".join(f"{k} x{v}" for k, v in sorted(kinds.items()))
        print(f"replay       {len(info['records'])} record(s): {by_kind}")
    else:
        print("replay       0 records")
    return 0


# ----------------------------------------------------------------------
# top: the stats-frame dashboard
# ----------------------------------------------------------------------
#: server-side counters summed into one per-site "errors" column
_SERVER_ERROR_COUNTERS = (
    "service_read_timeouts_total",
    "service_fetch_failures_total",
    "service_fetch_defer_timeouts_total",
)


async def _collect_top(
    client: KVClient, addresses: Dict[SiteId, str]
) -> Dict[str, object]:
    """Poll every site's ``sys.stats`` into one dashboard snapshot: the
    ``--once --json`` output shape, also consumed by the renderer and
    asserted on by ``stats-smoke``.  A site that refuses or cannot be
    reached shows as ``{"up": False}`` — the dashboard keeps running
    through crashes (that is rather the point)."""
    sites: Dict[str, object] = {}
    lag: Dict[str, object] = {}
    for site in sorted(addresses):
        try:
            stats = await client.stats(site)
        except (
            ConnectionError,
            OSError,
            asyncio.TimeoutError,
            ServiceUnavailableError,
            WireError,
        ):
            sites[str(site)] = {"up": False}
            continue
        me = str(stats["site"])
        metrics = stats.get("metrics") or {}
        ops: Dict[str, float] = {}
        errors = 0
        for key, value in metrics.get("counters", {}).items():
            name, labels = parse_metric_key(key)
            if labels.get("site") != me:
                continue
            if name == "service_requests_total":
                op = labels.get("op", "?")
                ops[op] = ops.get(op, 0) + value
            elif name in _SERVER_ERROR_COUNTERS:
                errors += value
        visibility: Dict[str, object] = {}
        for key, hist in metrics.get("histograms", {}).items():
            name, labels = parse_metric_key(key)
            if name != "visibility_latency_ms" or labels.get("site") != me:
                continue
            count = hist["count"]
            visibility[labels.get("origin", "?")] = {
                "count": count,
                "mean_ms": hist["total"] / count if count else None,
                "max_ms": hist["max"],
            }
        sites[me] = {
            "up": True,
            "uptime_ms": stats["uptime_ms"],
            "applies": stats["applies"],
            "parked": stats["parked"],
            "store_keys": stats["store_keys"],
            "dep_log": stats["dep_log"],
            "flight": stats["flight"],
            "ops": ops,
            "errors": errors,
            "visibility_ms": visibility,
        }
        lag[me] = {
            dest: {
                "unacked": link["unacked"],
                "unapplied": (
                    None
                    if link["applied"] is None
                    else link["acked"] - link["applied"]
                ),
            }
            for dest, link in sorted(stats.get("links", {}).items())
        }
    return {"sites": sites, "lag": lag}


def _ops_rate(cur: Dict, prev: Optional[Dict], dt: Optional[float]) -> float:
    total = sum(cur["ops"].values())
    if prev is not None and prev.get("up") and dt:
        return max(0.0, (total - sum(prev["ops"].values())) / dt)
    uptime_s = (cur.get("uptime_ms") or 0) / 1000.0
    return total / uptime_s if uptime_s > 0 else 0.0


def _render_top(
    snap: Dict, prev: Optional[Dict] = None, dt: Optional[float] = None
) -> str:
    sites: Dict[str, Dict] = snap["sites"]  # type: ignore[assignment]
    lag: Dict[str, Dict] = snap["lag"]  # type: ignore[assignment]
    ids = sorted(sites, key=int)
    up = [s for s in ids if sites[s].get("up")]
    lines = [f"repro-kv top — {len(ids)} sites, {len(up)} up"]
    lines.append(
        f"{'site':>4} {'state':>5} {'ops/s':>8} {'ops':>7} {'errs':>5} "
        f"{'applies':>8} {'parked':>6} {'deplog':>7} {'flight':>7}"
    )
    for sid in ids:
        s = sites[sid]
        if not s.get("up"):
            lines.append(f"{sid:>4} {'down':>5}")
            continue
        prev_site = (prev or {}).get("sites", {}).get(sid)
        lines.append(
            f"{sid:>4} {'up':>5} {_ops_rate(s, prev_site, dt):8.1f} "
            f"{sum(s['ops'].values()):7.0f} {s['errors']:5.0f} "
            f"{s['applies']:8d} {s['parked']:6d} "
            f"{s['dep_log']['entries']:7d} {s['flight']['held']:7d}"
        )
    lines.append("")
    lines.append("replication lag  src -> dst, unacked/unapplied (- = no link)")
    lines.append("     " + "".join(f"{'s' + d:>10}" for d in ids))
    for src in ids:
        row = [f"{'s' + src:>5}"]
        for dst in ids:
            if src == dst:
                row.append(f"{'·':>10}")
                continue
            link = lag.get(src, {}).get(dst)
            if link is None:
                row.append(f"{'-':>10}")
            else:
                ua = link["unapplied"]
                row.append(f"{link['unacked']}/{'-' if ua is None else ua}".rjust(10))
        lines.append("".join(row))
    vis_lines = []
    for sid in up:
        for origin, h in sorted(sites[sid]["visibility_ms"].items()):
            if h["count"]:
                vis_lines.append(
                    f"  s{origin} -> s{sid}: {h['count']:.0f} applies, "
                    f"mean {h['mean_ms']:.2f} ms, max {h['max_ms']:.2f} ms"
                )
    if vis_lines:
        lines.append("")
        lines.append("visibility latency (issue -> remote apply)")
        lines.extend(vis_lines)
    return "\n".join(lines)


async def _top(args: argparse.Namespace) -> int:
    addresses = _parse_sites(args.site)
    client = KVClient(addresses, {}, TcpTransport(), home=min(addresses))
    try:
        if args.once:
            snap = await _collect_top(client, addresses)
            if args.json:
                print(json.dumps(snap, indent=2, sort_keys=True))
            else:
                print(_render_top(snap))
            return 0 if any(
                s.get("up") for s in snap["sites"].values()  # type: ignore[union-attr]
            ) else 1
        loop = asyncio.get_running_loop()
        prev: Optional[Dict] = None
        prev_t: Optional[float] = None
        while True:
            now = loop.time()
            snap = await _collect_top(client, addresses)
            dt = None if prev_t is None else now - prev_t
            sys.stdout.write(
                "\x1b[2J\x1b[H" + _render_top(snap, prev, dt) + "\n"
            )
            sys.stdout.flush()
            prev, prev_t = snap, now
            await asyncio.sleep(args.interval)
    except (KeyboardInterrupt, asyncio.CancelledError):
        return 0
    finally:
        await client.close()


# ----------------------------------------------------------------------
# loopback commands
# ----------------------------------------------------------------------
async def _bench(args: argparse.Namespace) -> int:
    if args.ledger is not None:
        from repro.service.bench import write_report

        # write_report runs its own event loops (one per cell); hop off
        # this one via a thread to keep the handler signature uniform
        try:
            report = await asyncio.to_thread(write_report, args.ledger, args.fast)
        except RuntimeError as exc:
            print(f"ledger {args.ledger}: GUARDRAIL FAILED — {exc}")
            return 1
        rail = report["guardrail"]
        cells = report["cells"]
        for transport in ("loopback", "tcp"):
            row = cells[transport]
            print(
                f"  {transport:<9} json {row['json']['ops_per_s']:8.0f} ops/s"
                f"   binary {row['binary']['ops_per_s']:8.0f} ops/s"
                f"   delta {row['delta']['ops_per_s']:8.0f} ops/s"
                f"   speedup {row['speedup']:.2f}x"
            )
        meta = report["metadata_cell"]
        print(
            f"  metadata  json {meta['json']['wire_bytes_per_op']:8.0f} B/op"
            f"   binary {meta['binary']['wire_bytes_per_op']:8.0f} B/op"
            f"   delta {meta['delta']['wire_bytes_per_op']:8.0f} B/op"
            f"   ratio {meta['bytes_ratio']:.2f}x"
        )
        dur = report["durability_cell"]
        worst_recovery = max(dur["recovery"], key=lambda r: r["gap"])
        print(
            f"  durability  wal-off {dur['off']['ops_per_s']:8.0f} ops/s"
            f"   wal-on {dur['on']['ops_per_s']:8.0f} ops/s"
            f"   ratio {dur['wal_ratio']:.2f}x"
            f"   recovery(gap={worst_recovery['gap']})"
            f" {worst_recovery['restart_ms']:.1f}ms restart"
            f" + {worst_recovery['converge_ms']:.1f}ms converge"
        )
        if rail["enforced"]:
            print(
                f"ledger {args.ledger}: binary {rail['speedup']:.2f}x >= "
                f"{rail['speedup_floor']:.2f}x floor on {rail['transport']}; "
                f"delta bytes/op {rail['bytes_ratio']:.2f}x <= "
                f"{rail['bytes_ratio_ceiling']:.2f}x ceiling on the "
                f"metadata cell; WAL {rail['wal_ratio']:.2f}x >= "
                f"{rail['durability_floor']:.2f}x floor"
            )
        else:
            print(
                f"ledger {args.ledger}: binary {rail['speedup']:.2f}x on "
                f"{rail['transport']}, delta bytes/op {rail['bytes_ratio']:.2f}x, "
                f"WAL {rail['wal_ratio']:.2f}x "
                f"(fast run — {rail['speedup_floor']:.2f}x floor / "
                f"{rail['bytes_ratio_ceiling']:.2f}x ceiling / "
                f"{rail['durability_floor']:.2f}x WAL floor not enforced)"
            )
        return 0
    metrics = MetricsRegistry()
    async with ServiceCluster(
        args.sites,
        args.variables,
        args.protocol,
        replication_factor=args.replication_factor,
        strict_remote_reads=args.strict,
        sanitize=args.sanitize,
        metrics=metrics,
        seed=args.seed,
        codec=args.codec,
    ) as cluster:
        gen = LoadGenerator(
            cluster,
            workload=args.workload,
            ops_per_site=args.ops_per_site,
            sessions=args.sessions,
            value_size=args.value_size,
            seed=args.seed,
            metrics=metrics,
        )
        report = await gen.run()
        await cluster.quiesce()
    if args.json:
        print(json.dumps(metrics.snapshot(), indent=2, sort_keys=True))
    else:
        print(f"protocol   {args.protocol} (workload {args.workload}, "
              f"{args.codec} wire)")
        print(report.format())
        counters = metrics.snapshot()["counters"]
        sent = sum(
            v for k, v in counters.items()
            if k.startswith("wire_bytes_sent_total")
        )
        if sent and report.ops:
            print(
                f"wire       {sent} bytes sent "
                f"({sent / report.ops:.0f} B/op)"
            )
    return 0 if report.errors == 0 else 1


async def _smoke(args: argparse.Namespace) -> int:
    """The CI gate (see module docstring and docs/service.md).

    Each protocol runs the full durability cycle: a *durable* loopback
    cluster under load, one site chaos-killed mid-run (flight
    post-mortem dumped), a post-crash write issued at a survivor, then
    the victim restarted in place from its data directory.  The restart
    must recover from snapshot + WAL suffix, rejoin under a bumped
    incarnation epoch, reconverge (peer-link redelivery + gossip
    anti-entropy), and serve a causally-consistent read of the
    post-crash write — with the sanitizer shadowing every site
    throughout, the restarted incarnation included.
    """
    import os
    import tempfile

    from repro.obs.jsonl import load_trace
    from repro.obs.timeline import render_report

    failures = 0
    for protocol in args.protocols:
        metrics = MetricsRegistry()
        with tempfile.TemporaryDirectory() as state_dir:
            flight_dir = os.path.join(state_dir, "flight")
            async with ServiceCluster(
                args.sites,
                args.sites * 2,
                protocol,
                # partial replication where the protocol supports it (the
                # harness widens to full for full-replication-only ones)
                replication_factor=2,
                sanitize=True,
                metrics=metrics,
                seed=args.seed,
                flight_dir=flight_dir,
                data_dir=os.path.join(state_dir, "data"),
                snapshot_interval=0.25,
                gossip_interval=0.05,
            ) as cluster:
                gen = LoadGenerator(
                    cluster,
                    workload="a",
                    ops_per_site=args.ops_per_site,
                    seed=args.seed,
                    metrics=metrics,
                )
                run = asyncio.ensure_future(gen.run())
                # kill the highest site once a third of the load is
                # through; clients homed there must fail over without
                # surfacing errors
                while gen.completed < gen.total_ops // 3 and not run.done():
                    await asyncio.sleep(0.001)
                victim = args.sites - 1
                cluster.kill_site(victim)
                report = await run
                try:
                    await cluster.quiesce()
                except TimeoutError:
                    print(f"  {protocol}: survivors failed to quiesce")
                    failures += 1
                # a write the dead site has never seen, against a
                # variable it replicates; the survivors have settled, so
                # every earlier write to it is in this write's causal
                # past and the restarted victim must converge to ours
                probe_var = next(
                    v
                    for v in cluster.variables
                    if victim in cluster.placement[v]
                    and 0 in cluster.placement[v]
                )
                probe = cluster.client(0)
                await probe.put(probe_var, "post-crash")
                await probe.close()
                revived = await cluster.restart_site(victim)
                try:
                    await cluster.quiesce(timeout=10.0)
                except TimeoutError:
                    print(f"  {protocol}: cluster failed to reconverge")
                    failures += 1
                reader = cluster.client(victim)
                value, _, served_by = await reader.get(probe_var)
                await reader.close()
                if value != "post-crash":
                    print(
                        f"  {protocol}: stale read after recovery — "
                        f"{probe_var} = {value!r} from s{served_by}"
                    )
                    failures += 1
                checks = (
                    cluster.sanitizer.checks_run
                    if cluster.sanitizer is not None
                    else 0
                )
            # the chaos kill must have left a flight post-mortem that
            # renders through the ``repro-sim trace`` pipeline
            artifact = os.path.join(
                flight_dir, f"site-{victim}-chaos-kill-site.jsonl"
            )
            if not os.path.exists(artifact):
                print(f"  {protocol}: no flight artifact at {artifact}")
                failures += 1
            else:
                trace = load_trace(artifact)
                if not trace.records or not render_report(trace):
                    print(f"  {protocol}: flight artifact unrenderable")
                    failures += 1
        status = "ok" if report.errors == 0 else "FAIL"
        if report.errors:
            failures += 1
        print(
            f"  {protocol:<14} {status}  {report.ops} ops, "
            f"{report.errors} errors, {report.failovers} failovers, "
            f"{checks} sanitizer checks, killed s{victim}, revived as "
            f"incarnation {revived.epoch}"
        )
    if failures:
        print(f"smoke: {failures} failure(s)")
        return 1
    print(
        "smoke: all protocols clean (zero violations, zero request "
        "errors, kill -> recover -> reconverge)"
    )
    return 0


async def _stats_smoke(args: argparse.Namespace) -> int:
    """The observability CI gate: an in-process cluster over real TCP
    sockets, exercised end to end —

    1. load through the normal client paths, then ``quiesce()``;
    2. a ``top``-style snapshot must show every site up and the whole
       replication-lag matrix at zero;
    3. the Prometheus endpoint is scraped over HTTP and the body must
       parse as strict text exposition, with the lag gauges at zero and
       the per-origin visibility histograms present;
    4. one site is chaos-killed over the wire; its flight post-mortem
       must exist and render through the ``repro-sim trace`` pipeline.
    """
    import os
    import tempfile

    from repro.obs.export import parse_exposition, serve_metrics
    from repro.obs.jsonl import load_trace
    from repro.obs.timeline import render_report

    failures: List[str] = []
    metrics = MetricsRegistry()
    # mint free ports by binding port 0 (same idiom as the service
    # bench's TCP cells; the window between close and listen is benign)
    addresses: Dict[SiteId, str] = {}
    for site in range(args.sites):
        probe = await asyncio.start_server(
            lambda r, w: w.close(), "127.0.0.1", 0
        )
        port = probe.sockets[0].getsockname()[1]
        probe.close()
        await probe.wait_closed()
        addresses[site] = f"127.0.0.1:{port}"
    with tempfile.TemporaryDirectory() as flight_dir:
        cluster = ServiceCluster(
            args.sites,
            args.sites * 2,
            args.protocol,
            transport=TcpTransport(),
            addresses=addresses,
            sanitize=True,
            metrics=metrics,
            seed=args.seed,
            flight_dir=flight_dir,
        )
        async with cluster:
            exporter = await serve_metrics(
                metrics,
                port=0,
                refresh=lambda: [s.refresh_gauges() for s in cluster.servers],
            )
            scrape_port = exporter.sockets[0].getsockname()[1]
            gen = LoadGenerator(
                cluster,
                workload="a",
                ops_per_site=args.ops_per_site,
                seed=args.seed,
                metrics=metrics,
            )
            report = await gen.run()
            await cluster.quiesce()
            if report.errors:
                failures.append(f"{report.errors} load errors")

            # -- top snapshot: everyone up, lag matrix at zero --------
            client = cluster.client(0)
            snap = await _collect_top(client, addresses)
            sites = snap["sites"]
            for sid, s in sites.items():  # type: ignore[union-attr]
                if not s.get("up"):
                    failures.append(f"site {sid} not answering sys.stats")
                elif s["parked"]:
                    failures.append(f"site {sid}: {s['parked']} parked after quiesce")
            for src, row in snap["lag"].items():  # type: ignore[union-attr]
                for dst, link in row.items():
                    if link["unacked"] or link["unapplied"]:
                        failures.append(
                            f"lag {src}->{dst} nonzero after quiesce: {link}"
                        )
            vis = sum(
                h["count"]
                for s in sites.values()  # type: ignore[union-attr]
                if s.get("up")
                for h in s["visibility_ms"].values()
            )
            if vis == 0:
                failures.append("no visibility_latency_ms observations")

            # -- Prometheus scrape: strict parse, gauges at zero ------
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", scrape_port
            )
            writer.write(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            head, _, body = raw.partition(b"\r\n\r\n")
            if b"200 OK" not in head.splitlines()[0]:
                failures.append(f"scrape answered {head.splitlines()[0]!r}")
            try:
                samples = parse_exposition(body.decode("utf-8"))
            except ValueError as exc:
                failures.append(f"scrape body failed strict parse: {exc}")
                samples = {}
            if samples:
                if not any(
                    k.startswith("visibility_latency_ms_bucket") for k in samples
                ):
                    failures.append("scrape has no visibility histogram")
                stale = [
                    k
                    for k, v in samples.items()
                    if k.startswith(("link_unacked_count", "link_unapplied_count"))
                    and v != 0
                ]
                if stale:
                    failures.append(f"scrape shows nonzero lag: {stale}")
            exporter.close()
            await exporter.wait_closed()

            # -- chaos kill over the wire -> flight post-mortem -------
            victim = args.sites - 1
            if not await client.kill(victim):
                failures.append(f"kill frame to site {victim} failed")
            artifact = os.path.join(
                flight_dir, f"site-{victim}-chaos-kill-site.jsonl"
            )
            if not os.path.exists(artifact):
                failures.append(f"no flight artifact at {artifact}")
            else:
                trace = load_trace(artifact)
                rendered = render_report(trace)
                if not trace.records or not rendered:
                    failures.append("flight artifact empty or unrenderable")
                else:
                    print(
                        f"  flight post-mortem: {len(trace.records)} records, "
                        f"reason={trace.header['flight']['reason']}"
                    )
            await client.close()
    if failures:
        for failure in failures:
            print(f"  FAIL {failure}")
        print(f"stats-smoke: {len(failures)} failure(s)")
        return 1
    print(
        f"stats-smoke: ok ({args.protocol}, {args.sites} TCP sites, "
        f"{report.ops} ops, scrape parsed, lag zero, flight renders)"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "serve": _serve,
        "put": _one_shot,
        "get": _one_shot,
        "top": _top,
        "chaos-kill-site": _chaos_kill,
        "recover": _recover,
        "bench": _bench,
        "smoke": _smoke,
        "stats-smoke": _stats_smoke,
    }[args.command]
    try:
        return asyncio.run(handler(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
