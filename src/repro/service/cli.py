"""``repro-kv`` — command-line front end to the networked KV service.

Subcommands::

    serve            run one site's server over TCP until interrupted
    put / get        one operation against a running TCP cluster
    bench            closed-loop YCSB load against a loopback cluster,
                     reporting throughput and latency percentiles
    chaos-kill-site  send the chaos kill frame to one TCP site
    smoke            the CI gate: 3-site loopback cluster per protocol,
                     sanitizer on, one site killed mid-run — asserts zero
                     causal violations and zero surfaced request errors

``serve``/``put``/``get``/``chaos-kill-site`` speak real TCP (addresses
are ``host:port``, repeated ``--site`` flags give the cluster map);
``bench`` and ``smoke`` build the whole cluster in-process over the
loopback transport, where the causal sanitizer can shadow every site.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.core.base import available_protocols
from repro.obs.registry import MetricsRegistry
from repro.service.client import KVClient
from repro.service.harness import ServiceCluster
from repro.service.loadgen import LoadGenerator
from repro.service.server import SiteServer
from repro.service.transport import TcpTransport
from repro.store.placement import make_placement
from repro.types import SiteId


def _parse_sites(pairs: List[str]) -> Dict[SiteId, str]:
    addresses: Dict[SiteId, str] = {}
    for pair in pairs:
        site, _, address = pair.partition("=")
        if not address:
            raise SystemExit(f"--site wants ID=HOST:PORT, got {pair!r}")
        addresses[int(site)] = address
    return addresses


def _add_cluster_map(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--site",
        action="append",
        default=[],
        metavar="ID=HOST:PORT",
        required=True,
        help="cluster address map entry (repeat per site)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-kv",
        description="networked causal KV service (see docs/service.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    srv = sub.add_parser("serve", help="run one site's TCP server")
    _add_cluster_map(srv)
    srv.add_argument("--me", type=int, required=True, help="this site's ID")
    srv.add_argument("--protocol", default="opt-track", choices=available_protocols())
    srv.add_argument("--variables", type=int, default=16)
    srv.add_argument("--replication-factor", type=int, default=None)
    srv.add_argument("--strict", action="store_true", help="strict remote reads")
    srv.add_argument("--seed", type=int, default=0, help="placement seed")

    for name, help_text in (("put", "write VAR VALUE"), ("get", "read VAR")):
        p = sub.add_parser(name, help=help_text)
        _add_cluster_map(p)
        p.add_argument("--home", type=int, default=0, help="home (session) site")
        p.add_argument("--variables", type=int, default=16)
        p.add_argument("--replication-factor", type=int, default=None)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("var")
        if name == "put":
            p.add_argument("value")

    kill = sub.add_parser("chaos-kill-site", help="crash one TCP site")
    _add_cluster_map(kill)
    kill.add_argument("--target", type=int, required=True)

    bench = sub.add_parser("bench", help="YCSB load against a loopback cluster")
    bench.add_argument("--protocol", default="opt-track", choices=available_protocols())
    bench.add_argument("--sites", type=int, default=3)
    bench.add_argument("--variables", type=int, default=16)
    bench.add_argument("--replication-factor", type=int, default=None)
    bench.add_argument("--workload", default="a", help="YCSB workload a/b/c/d/f")
    bench.add_argument("--ops-per-site", type=int, default=200)
    bench.add_argument(
        "--sessions", type=int, default=1, help="concurrent sessions per site"
    )
    bench.add_argument(
        "--value-size", type=int, default=0, help="pad written values to N bytes"
    )
    bench.add_argument(
        "--codec",
        default="delta",
        choices=("delta", "binary", "json"),
        help="wire profile: delta = WIRE_VERSION 4 metadata-lean, "
        "binary = WIRE_VERSION 3 batched, json = v2 per-frame",
    )
    bench.add_argument("--strict", action="store_true")
    bench.add_argument("--sanitize", action="store_true")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--json", action="store_true", help="emit the metrics snapshot")
    bench.add_argument(
        "--ledger",
        metavar="PATH",
        default=None,
        help="run the full transport x codec reference matrix instead, "
        "write the BENCH_service.json ledger to PATH, and fail unless "
        "the binary profile clears the codec-speedup guardrail and the "
        "delta profile clears the metadata-cell bytes/op guardrail",
    )
    bench.add_argument(
        "--fast",
        action="store_true",
        help="with --ledger: single repeat on a reduced run (smoke use)",
    )

    smoke = sub.add_parser("smoke", help="CI smoke gate (loopback, chaos, sanitizer)")
    smoke.add_argument("--sites", type=int, default=3)
    smoke.add_argument("--ops-per-site", type=int, default=40)
    smoke.add_argument("--seed", type=int, default=0)
    smoke.add_argument(
        "--protocols",
        nargs="*",
        default=["opt-track", "full-track", "opt-track-crp"],
    )
    return parser


# ----------------------------------------------------------------------
# TCP commands
# ----------------------------------------------------------------------
def _placement(args: argparse.Namespace, n: int):
    p = args.replication_factor or n
    return make_placement("round-robin", n, args.variables, p, seed=args.seed)


async def _serve(args: argparse.Namespace) -> int:
    from repro.core.base import ProtocolConfig, protocol_class

    addresses = _parse_sites(args.site)
    n = len(addresses)
    cls = protocol_class(args.protocol)
    placement = _placement(args, n)
    proto = cls(
        ProtocolConfig(
            n=n,
            site=args.me,
            replicas_of=placement,
            strict_remote_reads=args.strict,
        )
    )
    server = SiteServer(proto, addresses, TcpTransport(), metrics=MetricsRegistry())
    await server.start()
    print(f"site {args.me} ({args.protocol}) serving at {addresses[args.me]}")
    try:
        await server._stopped.wait()
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    finally:
        await server.stop()
    return 0


async def _one_shot(args: argparse.Namespace) -> int:
    addresses = _parse_sites(args.site)
    placement = _placement(args, len(addresses))
    client = KVClient(addresses, placement, TcpTransport(), home=args.home)
    try:
        if args.command == "put":
            wid = await client.put(args.var, args.value)
            print(f"ok {wid}")
        else:
            value, wid, by = await client.get(args.var)
            print(f"{args.var} = {value!r}  ({wid or 'initial'}, served by s{by})")
    finally:
        await client.close()
    return 0


async def _chaos_kill(args: argparse.Namespace) -> int:
    addresses = _parse_sites(args.site)
    client = KVClient(addresses, {}, TcpTransport(), home=args.target)
    try:
        ok = await client.kill(args.target)
    finally:
        await client.close()
    print(f"site {args.target}: {'killed' if ok else 'unreachable'}")
    return 0 if ok else 1


# ----------------------------------------------------------------------
# loopback commands
# ----------------------------------------------------------------------
async def _bench(args: argparse.Namespace) -> int:
    if args.ledger is not None:
        from repro.service.bench import write_report

        # write_report runs its own event loops (one per cell); hop off
        # this one via a thread to keep the handler signature uniform
        try:
            report = await asyncio.to_thread(write_report, args.ledger, args.fast)
        except RuntimeError as exc:
            print(f"ledger {args.ledger}: GUARDRAIL FAILED — {exc}")
            return 1
        rail = report["guardrail"]
        cells = report["cells"]
        for transport in ("loopback", "tcp"):
            row = cells[transport]
            print(
                f"  {transport:<9} json {row['json']['ops_per_s']:8.0f} ops/s"
                f"   binary {row['binary']['ops_per_s']:8.0f} ops/s"
                f"   delta {row['delta']['ops_per_s']:8.0f} ops/s"
                f"   speedup {row['speedup']:.2f}x"
            )
        meta = report["metadata_cell"]
        print(
            f"  metadata  json {meta['json']['wire_bytes_per_op']:8.0f} B/op"
            f"   binary {meta['binary']['wire_bytes_per_op']:8.0f} B/op"
            f"   delta {meta['delta']['wire_bytes_per_op']:8.0f} B/op"
            f"   ratio {meta['bytes_ratio']:.2f}x"
        )
        if rail["enforced"]:
            print(
                f"ledger {args.ledger}: binary {rail['speedup']:.2f}x >= "
                f"{rail['speedup_floor']:.2f}x floor on {rail['transport']}; "
                f"delta bytes/op {rail['bytes_ratio']:.2f}x <= "
                f"{rail['bytes_ratio_ceiling']:.2f}x ceiling on the "
                f"metadata cell"
            )
        else:
            print(
                f"ledger {args.ledger}: binary {rail['speedup']:.2f}x on "
                f"{rail['transport']}, delta bytes/op {rail['bytes_ratio']:.2f}x "
                f"(fast run — {rail['speedup_floor']:.2f}x floor / "
                f"{rail['bytes_ratio_ceiling']:.2f}x ceiling not enforced)"
            )
        return 0
    metrics = MetricsRegistry()
    async with ServiceCluster(
        args.sites,
        args.variables,
        args.protocol,
        replication_factor=args.replication_factor,
        strict_remote_reads=args.strict,
        sanitize=args.sanitize,
        metrics=metrics,
        seed=args.seed,
        codec=args.codec,
    ) as cluster:
        gen = LoadGenerator(
            cluster,
            workload=args.workload,
            ops_per_site=args.ops_per_site,
            sessions=args.sessions,
            value_size=args.value_size,
            seed=args.seed,
            metrics=metrics,
        )
        report = await gen.run()
        await cluster.quiesce()
    if args.json:
        print(json.dumps(metrics.snapshot(), indent=2, sort_keys=True))
    else:
        print(f"protocol   {args.protocol} (workload {args.workload}, "
              f"{args.codec} wire)")
        print(report.format())
        counters = metrics.snapshot()["counters"]
        sent = sum(
            v for k, v in counters.items()
            if k.startswith("wire_bytes_sent_total")
        )
        if sent and report.ops:
            print(
                f"wire       {sent} bytes sent "
                f"({sent / report.ops:.0f} B/op)"
            )
    return 0 if report.errors == 0 else 1


async def _smoke(args: argparse.Namespace) -> int:
    """The CI gate (see module docstring and docs/service.md)."""
    failures = 0
    for protocol in args.protocols:
        metrics = MetricsRegistry()
        async with ServiceCluster(
            args.sites,
            args.sites * 2,
            protocol,
            # partial replication where the protocol supports it (the
            # harness widens to full for full-replication-only protocols)
            replication_factor=2,
            sanitize=True,
            metrics=metrics,
            seed=args.seed,
        ) as cluster:
            gen = LoadGenerator(
                cluster,
                workload="a",
                ops_per_site=args.ops_per_site,
                seed=args.seed,
                metrics=metrics,
            )
            run = asyncio.ensure_future(gen.run())
            # kill the highest site once a third of the load is through;
            # clients homed there must fail over without surfacing errors
            while gen.completed < gen.total_ops // 3 and not run.done():
                await asyncio.sleep(0.001)
            victim = args.sites - 1
            cluster.kill_site(victim)
            report = await run
            try:
                await cluster.quiesce()
            except TimeoutError:
                print(f"  {protocol}: survivors failed to quiesce")
                failures += 1
            checks = (
                cluster.sanitizer.checks_run if cluster.sanitizer is not None else 0
            )
        status = "ok" if report.errors == 0 else "FAIL"
        if report.errors:
            failures += 1
        print(
            f"  {protocol:<14} {status}  {report.ops} ops, "
            f"{report.errors} errors, {report.failovers} failovers, "
            f"{checks} sanitizer checks, killed s{victim}"
        )
    if failures:
        print(f"smoke: {failures} failure(s)")
        return 1
    print("smoke: all protocols clean (zero violations, zero request errors)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "serve": _serve,
        "put": _one_shot,
        "get": _one_shot,
        "chaos-kill-site": _chaos_kill,
        "bench": _bench,
        "smoke": _smoke,
    }[args.command]
    try:
        return asyncio.run(handler(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
