"""Per-site asyncio server hosting one causal-protocol instance.

One :class:`SiteServer` owns one :class:`~repro.core.base.CausalProtocol`
state machine and exposes it over a :class:`~repro.service.transport.
Transport`.  The protocol is a pure state machine with no locking, so the
server enforces a **single-writer discipline**: every protocol mutation
happens synchronously on the event loop between awaits — handlers never
hold a partially applied protocol state across a suspension point.

Request paths (the home-site session model):

* **put** — always served locally (any site may originate a write).  The
  resulting update messages are enqueued on per-destination
  :class:`PeerLink` queues — FIFO per link, surviving reconnects — which
  preserves the per-sender delivery order the activation predicates rely
  on.
* **get, locally replicated** — gated on
  :meth:`~repro.core.base.CausalProtocol.can_read_local` (strict mode can
  hold a read while causally known updates are in flight); the wait is
  bounded by ``read_timeout`` and expires to a retriable ``read-timeout``
  error.
* **get, remote** — the server performs the paper's RemoteFetch on the
  client's behalf over the peer link to the predesignated replica.  Strict
  mode defers on the serving side (``can_serve_fetch``); lenient mode runs
  the client-side reply-freshness gate
  (:meth:`~repro.core.base.CausalProtocol.reply_is_fresh`) and re-issues
  stale fetches, exactly like the simulator.  Exhaustion surfaces as a
  retriable ``unavailable`` error and the client fails over to another
  replica of the key.

Peer links are **acknowledged**: every link connection opens with a
``link.hello`` handshake naming the sender's incarnation ``epoch``, and
the receiver answers ``link.ok`` with its cumulative per-link ack.  A
``repl`` frame leaves the sender's queue only when the receiver has
acknowledged it (``repl.ack``, sent after the update is applied or
parked) — a transport-level send success (e.g. TCP accepting bytes into
a kernel buffer the peer never reads) is *not* enough, so a frame lost
mid-connection is resent after the next handshake.  The receiver
processes only the contiguous next sequence number (``ls == seen + 1``),
drops duplicates, and refuses gaps without acking, which turns the
link's at-least-once delivery into exactly-once application; a new
epoch (a restarted sender) resets the receiver's dedup state so a fresh
incarnation's sequence numbers are not mistaken for duplicates.

The same handshake negotiates the **wire profile** (WIRE_VERSION 3):
``link.hello`` and the client ``hello`` carry the sender's capability
version ``cv``, the receiver answers with ``min(cv, own)``, and only
when both sides are ≥ 3 does the connection switch to the binary codec
and the batched profile — the link drains its whole outbound FIFO per
wakeup with one coalesced flush, the inbound loop decodes and applies a
whole batch of contiguous frames before signalling the progress
condition once, and repl acks are **cumulative per batch** (one
ack naming the highest contiguous sequence, instead of one ack frame
per apply).  Acks remain batch-deferred-but-processing-gated: an ack is
sent only after every frame it covers was applied or parked, so the v2
guarantee — an acked frame is inside this site's protocol state — is
unchanged.  A v2 peer never announces ``cv``, gets a JSON ``link.ok``
without one, and both sides keep the v2 per-frame JSON profile.

WIRE_VERSION 4 layers the **metadata-lean profile** on the same
handshake.  When both sides announce ``cv >= 4`` the receiver's
``link.ok`` / ``hello.ok`` additionally carries its intern table
(``itab``: variable names whose positions become the small int ids
senders may substitute for ``var`` strings) and its applied watermark
``ap``.  The sender then *chains* repl frames per connection: the first
frame travels full, later frames may travel as ``repl.delta`` carrying
only the metadata diff against the previous frame of the same
connection.  Because the receiver only ever decodes the contiguous
``ls == seen + 1`` frame, its decode baseline (the last frame it
processed) always equals the sender's chain baseline; a reconnect drops
the chain on both sides and restarts with a full frame, so loss never
needs a repair protocol.  Acks upgrade to ``repl.ackp`` carrying the
applied watermark — the highest contiguous sequence whose update this
site has *applied* (not merely parked), wired as the usually-zero gap
below the ack — which the sender feeds to
:meth:`~repro.core.base.CausalProtocol.note_remote_apply`: an applied
watermark is out-of-band Condition-1 knowledge, so the sender prunes
the acked destination from retired dependency-log entries and its own
metadata stays bounded by what the slowest peer actually applied,
instead of growing with it (ack-driven GC).

Updates whose activation predicate is false are parked and re-evaluated
after every apply (a rescan drain — service deployments are a handful of
sites, so the simulator's wake index is not worth its bookkeeping here).

The observability hooks mirror the simulator byte-for-byte: the causal
sanitizer (when attached) sees the same ``on_write`` / ``before_apply`` /
``after_apply`` / ``on_read`` stream, and the lifecycle recorder receives
``issue``/``send``/``deliver``/``buffered``/``apply``/``read`` spans, so
``repro-sim trace`` renders service runs unchanged.

On top of that sits the **live observability plane**:

* every server keeps an always-on :class:`~repro.obs.flight.
  FlightRecorder` ring next to any user recorder (fanned out through a
  :class:`~repro.obs.flight.TeeRecorder`); a ``SanitizerViolation``, an
  unhandled handler exception, or a chaos ``kill`` dumps the ring as a
  TRACE_VERSION post-mortem via :meth:`SiteServer.flight_dump`;
* hellos carry the additive ``sx`` stats capability (orthogonal to the
  wire version ``cv``); a connection that advertised it may ask
  ``sys.stats`` and gets a synchronous single-writer snapshot — link
  lag watermarks, parked depths, dependency-log size, the metrics
  registry — while any other connection gets the same ``bad-frame``
  error a pre-stats server would send;
* when the handshake reply echoes ``sx``, a link stamps outgoing repl
  frames with their origin issue time (``repl.t`` / ``repl.delta.t``),
  and the receiver turns issue→apply into the per-origin
  ``visibility_latency_ms`` histogram.  The stamp is exact on
  co-hosted clusters (one clock origin via :meth:`set_clock_origin`)
  and subject to host clock skew across machines.
"""

from __future__ import annotations

import asyncio
import itertools
import os
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.base import CausalProtocol
from repro.core.log import DepLog
from repro.core.messages import (
    FetchReply,
    FetchRequest,
    UpdateMessage,
    WriteResult,
)
from repro.errors import (
    SanitizerViolation,
    ServiceError,
    ServiceUnavailableError,
    WireError,
)
from repro.obs.flight import DEFAULT_FLIGHT_CAPACITY, FlightRecorder, TeeRecorder
from repro.service import gossip as gossip_proto
from repro.service import wire
from repro.service.durability import SiteWal, WalCorruptionError
from repro.service.transport import Connection, Listener, Transport
from repro.types import SiteId, VarId, WriteId

#: bound on consecutive stale-reply re-fetches of one remote read (same
#: role as ``repro.sim.process.MAX_STALE_FETCH_RETRIES``: the missing
#: update is in flight to the serving replica, so the loop converges
#: unless the link is actually down)
MAX_STALE_FETCH_RETRIES = 100

#: pause before re-issuing a stale fetch, seconds (grows linearly per
#: consecutive stale reply; gives the in-flight update time to land)
STALE_RETRY_PAUSE = 0.002

#: bound on waiting for the peer's ``link.ok`` handshake reply, seconds
LINK_HANDSHAKE_TIMEOUT = 2.0

#: inbound update frames, plain and issue-time-stamped (membership test
#: on the dispatch hot path)
_REPL_KINDS = frozenset(wire.REPL_FRAME_KINDS)


class PeerLink:
    """Outbound frame queue to one peer site, with reconnect + resend.

    Every connection opens with a ``link.hello``/``link.ok`` handshake
    (see the module docstring).  ``repl`` frames are sent in FIFO order
    by a single sender task but **retired only by a receiver-side ack**
    — the handshake's cumulative ack or an in-band ``repl.ack`` — never
    by transport send success alone, so a frame the transport accepted
    but the peer never processed is resent on the next connection.
    Fetch requests ride the same connection fire-and-forget (the
    requester's timeout covers their loss); a paired reader task routes
    ``fetch.ok`` / ``fetch.err`` responses back to the owning server's
    waiter table and applies incoming ``repl.ack`` frames.

    The queue holds *decoded* :class:`UpdateMessage` objects and encodes
    at send time: on a ``cv >= 4`` connection the per-connection
    :class:`~repro.service.wire.DeltaEncoder` (created during the
    handshake, dropped on disconnect) chains each frame against the
    previous one, so the same queued message encodes as a full frame on
    a fresh connection and as a ``repl.delta`` mid-stream.  Acks carry
    the receiver's applied watermark ``ap``; :meth:`_note_applied`
    translates it to the write clock at that sequence and feeds the
    protocol's ack-driven dependency-log GC.
    """

    def __init__(
        self,
        owner: "SiteServer",
        dest: SiteId,
        address: str,
        *,
        backoff_base: float = 0.02,
        backoff_cap: float = 0.5,
    ) -> None:
        self.owner = owner
        self.dest = dest
        self.address = address
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        #: unacknowledged updates as ``(ls, msg)``, FIFO by ``ls``;
        #: encoding happens at send time so the delta chain can restart
        #: per connection while the queue survives reconnects
        self._repl: Deque[Tuple[int, UpdateMessage]] = deque()
        #: pending fetch requests (retired on send; no ack bookkeeping)
        self._fetch: Deque[Dict[str, Any]] = deque()
        #: pending gossip control frames (``sys.digest`` / ``sys.range``).
        #: Retired on send but counted in :attr:`backlog` until the peer
        #: acks them with ``sys.ctrl.ok`` — control frames trigger repair
        #: shipping at the peer, so quiesce must not settle while one is
        #: in flight.  Dropped wholesale when the peer never negotiated
        #: the ``gx`` capability (idempotent; the next gossip round
        #: regenerates them).
        self._ctrl: Deque[Dict[str, Any]] = deque()
        self._ctrl_unacked = 0
        #: highest own write clock among acked repl entries — the "peer
        #: durably holds this write" watermark gossip pushes check first
        self.acked_seq = 0
        #: own write clocks currently sitting in ``_repl`` (unacked), so
        #: a gossip repair never double-enqueues an in-flight update
        self._queued_seqs: Set[int] = set()
        self._wakeup = asyncio.Event()
        self._link_seq = 0
        #: per-connection delta/intern encoder; None below cv 4
        self._delta_out: Optional[wire.DeltaEncoder] = None
        #: link sequence -> write clock, for translating the receiver's
        #: applied watermark ``ap`` into a ``note_remote_apply`` call;
        #: entries at or below ``_gc_ls`` have been consumed
        self._ls_clock: Dict[int, int] = {}
        self._gc_ls = 0
        #: link sequence -> origin issue time (ms), recorded at enqueue
        #: and stamped onto frames for peers that negotiated ``sx``;
        #: survives reconnects with the queue, retired with the acks
        self._issued_at: Dict[int, float] = {}
        #: the last handshake reply echoed the ``sx`` stats capability
        self._peer_stats = False
        #: the last handshake reply echoed the ``gx`` gossip capability
        self._peer_gossip = False
        #: the last handshake agreed the v4 profile (applied watermarks
        #: flow, so ``_gc_ls`` is a meaningful lag baseline)
        self._v4 = False
        self._closed = False
        self._task: Optional[asyncio.Task] = None

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.ensure_future(self._run())

    def enqueue_update(self, msg: UpdateMessage) -> None:
        self._link_seq += 1
        self._repl.append((self._link_seq, msg))
        self._ls_clock[self._link_seq] = msg.write_id.seq
        self._issued_at[self._link_seq] = self.owner.now_ms()
        self._queued_seqs.add(msg.write_id.seq)
        self._wakeup.set()

    def enqueue_fetch(self, req: FetchRequest) -> None:
        self._fetch.append(wire.encode_fetch_request(req))
        self._wakeup.set()

    def enqueue_ctrl(self, frame: Dict[str, Any]) -> None:
        """Queue a gossip control frame, superseding any queued frame of
        the same kind (and origin): watermark digests and range requests
        are cumulative, so only the newest of each matters."""
        key = (frame["t"], frame.get("origin"))
        for i, queued in enumerate(self._ctrl):
            if (queued["t"], queued.get("origin")) == key:
                self._ctrl[i] = frame
                self._wakeup.set()
                return
        self._ctrl.append(frame)
        self._wakeup.set()

    @property
    def backlog(self) -> int:
        """Frames not yet *processed* by the peer: repl frames count
        until acknowledged, not merely until handed to the transport —
        this is what makes :meth:`ServiceCluster.quiesce` sound.  Gossip
        control frames count both while queued and (via ``sys.ctrl.ok``
        accounting) while their repair effects may still be materializing
        at the peer."""
        return (
            len(self._repl)
            + len(self._fetch)
            + len(self._ctrl)
            + self._ctrl_unacked
        )

    def stats(self) -> Dict[str, Any]:
        """Point-in-time lag watermarks, derived from the structures the
        ack protocol already keeps — no extra hot-path bookkeeping.
        ``acked == enqueued - unacked`` holds because ``_repl`` is
        exactly the ``(acked, _link_seq]`` suffix: entries leave only
        through :meth:`_retire`, which pops a contiguous prefix.
        ``applied`` is the receiver's applied watermark (v4 acks carry
        it); ``None`` on links that never agreed the v4 profile, where
        no watermark flows."""
        unacked = len(self._repl)
        acked = self._link_seq - unacked
        return {
            "enqueued": self._link_seq,
            "acked": acked,
            "unacked": unacked,
            "applied": self._gc_ls if self._v4 else None,
            "fetch_queue": len(self._fetch),
            "ctrl_queue": len(self._ctrl) + self._ctrl_unacked,
            "backlog": self.backlog,
        }

    async def close(self) -> None:
        self._closed = True
        self._wakeup.set()
        # take-then-clear: concurrent close() calls must not both await
        # the same task and race on resetting it
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        rng = np.random.default_rng(
            (self.owner.seed * 1_000_003 + self.dest) & 0x7FFFFFFF
        )
        backoff = self.backoff_base
        while not self._closed:
            try:
                conn = await self.owner.transport.connect(self.address)
            except (ConnectionError, OSError):
                self.owner.metric("link_connect_failures_total", peer=self.dest)
                await asyncio.sleep(backoff * (1.0 + rng.uniform(0.0, 0.5)))
                backoff = min(backoff * 2.0, self.backoff_cap)
                continue
            try:
                acked = await self._handshake(conn)
            except (ConnectionError, OSError, WireError, asyncio.TimeoutError):
                self.owner.metric("link_connect_failures_total", peer=self.dest)
                await conn.close()
                await asyncio.sleep(backoff * (1.0 + rng.uniform(0.0, 0.5)))
                backoff = min(backoff * 2.0, self.backoff_cap)
                continue
            backoff = self.backoff_base
            # run writer and reader side by side and reconnect when
            # EITHER dies: a send failure, or the reader seeing EOF (a
            # peer that restarted or silently closed) — unacked repl
            # frames are resent after the next handshake
            writer = asyncio.ensure_future(self._drain_queue(conn, acked))
            reader = asyncio.ensure_future(self._read_replies(conn))
            try:
                await asyncio.wait(
                    {writer, reader}, return_when=asyncio.FIRST_COMPLETED
                )
            finally:
                for task in (writer, reader):
                    task.cancel()
                    try:
                        await task
                    except (
                        asyncio.CancelledError,
                        ConnectionError,
                        OSError,
                        WireError,
                    ):
                        pass
                await conn.close()
            if not self._closed:
                self.owner.metric("link_drops_total", peer=self.dest)

    async def _handshake(self, conn: Connection) -> int:
        """Open the link: identify this sender incarnation, learn the
        receiver's cumulative ack (retiring frames it already has), and
        negotiate the wire profile.  The hello itself always travels
        JSON; the connection switches to the binary codec only when both
        sides announced capability ≥ 3 — a v2 receiver ignores ``cv``
        and answers without one, leaving the link on the v2 profile.  At
        capability ≥ 4 the reply also carries the receiver's intern
        table and applied watermark, and this connection gets a fresh
        :class:`~repro.service.wire.DeltaEncoder` (first frame full)."""
        await conn.send(
            wire.make_frame(
                "link.hello",
                src=self.owner.site,
                epoch=self.owner.epoch,
                cv=self.owner.wire_caps,
                sx=wire.STATS_CAPABILITY,
                gx=wire.GOSSIP_CAPABILITY,
            )
        )
        reply = await asyncio.wait_for(conn.recv(), LINK_HANDSHAKE_TIMEOUT)
        if reply is None or reply.get("t") != "link.ok":
            raise ConnectionResetError(
                f"peer {self.dest} did not complete the link handshake"
            )
        agreed = min(
            int(reply.get("cv", wire.JSON_WIRE_VERSION)), self.owner.wire_caps
        )
        # the stats capability is orthogonal to the wire version: a peer
        # that echoed ``sx`` understands issue-time-stamped repl frames
        # on ANY agreed profile; a pre-stats peer never echoes it and
        # never sees a ``.t`` frame
        self._peer_stats = int(reply.get("sx", 0)) >= wire.STATS_CAPABILITY
        self._peer_gossip = int(reply.get("gx", 0)) >= wire.GOSSIP_CAPABILITY
        # control frames unacked on the previous connection were either
        # processed (their repair effects live in the PEER's link
        # backlogs now) or lost (the next gossip round regenerates
        # them) — either way the in-flight count restarts with the
        # connection, unlike repl frames which must survive it
        self._ctrl_unacked = 0
        self._v4 = agreed >= wire.DELTA_WIRE_VERSION
        self._delta_out = None
        if agreed >= wire.BATCH_WIRE_VERSION:
            conn.negotiate(wire.codec_for(agreed), agreed)
        if agreed >= wire.DELTA_WIRE_VERSION:
            self._delta_out = wire.DeltaEncoder(
                wire.InternTable(reply.get("itab", ()))
            )
            self._note_applied(int(reply.get("ap", 0)))
        acked = int(reply.get("ack", 0))
        self._retire(acked)
        return acked

    def _note_applied(self, ap: int) -> None:
        """Feed the receiver's applied watermark to the protocol's
        dependency-log GC.  ``ap`` covers a *contiguous* applied prefix
        and link sequence order is this site's write clock order, so the
        clock recorded at ``ap`` bounds every write the peer applied;
        the watermark is monotone, so stale repeats are no-ops."""
        if ap <= self._gc_ls:
            return
        clock = self._ls_clock.pop(ap, 0)
        for ls in range(self._gc_ls + 1, ap):
            self._ls_clock.pop(ls, None)
        lo = self._gc_ls
        self._gc_ls = ap
        proto = self.owner.protocol
        # Transitive knowledge first: every newly-applied update's
        # piggybacked metadata proves the peer applied the records
        # naming it (activation predicate).  The updates are still in
        # ``_repl`` because acks retire entries only after this runs;
        # after a reconnect some may already be gone — best-effort GC.
        for ls, msg in self._repl:
            if ls > ap:
                break
            if ls > lo:
                proto.note_remote_apply_log(self.dest, msg.meta)
        proto.note_remote_apply(self.dest, clock)

    def _retire(self, ack: int) -> None:
        """Drop repl entries up to the receiver's cumulative ack.  An
        acked update is durably held by the peer (it WAL-appends before
        acking), so the ack also advances the gossip watermark
        ``acked_seq`` and releases the sender's own-log copy for this
        destination — every entry this link carries is an own write
        (origins ship only their own updates under partial replication,
        and gossip repair re-ships own writes only)."""
        while self._repl and self._repl[0][0] <= ack:
            ls, msg = self._repl.popleft()
            self._issued_at.pop(ls, None)
            self._queued_seqs.discard(msg.write_id.seq)
            if msg.write_id.seq > self.acked_seq:
                self.acked_seq = msg.write_id.seq
            self.owner._own_retired(msg)

    async def _drain_queue(self, conn: Connection, acked: int) -> None:
        # ``sent`` tracks the highest repl seq written to THIS
        # connection; entries stay in ``_repl`` until the receiver acks
        # them (linear rescan per frame — the unacked window is small
        # because acks retire the prefix as they arrive)
        if conn.agreed_version >= wire.BATCH_WIRE_VERSION:
            await self._drain_queue_batched(conn, acked)
            return
        sent = acked
        while not self._closed:
            frame = self._next_unsent(sent)
            while frame is not None and not self._closed:
                await conn.send(frame)
                if frame["t"] in _REPL_KINDS:
                    sent = int(frame["ls"])
                elif self._fetch and self._fetch[0] is frame:
                    self._fetch.popleft()
                elif self._ctrl and self._ctrl[0] is frame:
                    self._ctrl.popleft()
                    self._ctrl_unacked += 1
                frame = self._next_unsent(sent)
            self._wakeup.clear()
            if self._closed:
                return
            await self._wakeup.wait()

    async def _drain_queue_batched(self, conn: Connection, acked: int) -> None:
        """The v3+ writer: drain the WHOLE outbound FIFO per wakeup with
        one coalesced flush (``send_many`` → one transport drain),
        instead of a send-per-frame loop.  Retirement is unchanged —
        repl entries leave ``_repl`` only via receiver acks.  Frames are
        encoded here, in ``ls`` order, exactly once per connection: that
        single-pass discipline is what lets the v4 delta encoder chain
        each frame against the previous one."""
        sent = acked
        enc = self._delta_out
        while not self._closed:
            while not self._closed:  # lint: atomic — single drainer task per link: only this coroutine pops _fetch, and it pops exactly the prefix it captured before the send (new fetches append on the right and stay for the next round)
                # ``ls`` values are consecutive (assigned at enqueue) and
                # retired from the left only, so the unsent entries are
                # exactly the last ``_link_seq - sent`` entries — no scan
                n_unsent = min(len(self._repl), self._link_seq - sent)
                batch: List[Dict[str, Any]] = []
                last_ls = sent
                if n_unsent > 0:
                    stamp = self._peer_stats
                    for ls, msg in itertools.islice(
                        self._repl, len(self._repl) - n_unsent, None
                    ):
                        frame = (
                            enc.encode_update(msg, ls)
                            if enc is not None
                            else wire.encode_update(msg, ls)
                        )
                        if stamp:
                            issued = self._issued_at.get(ls)
                            if issued is not None:
                                wire.stamp_issue(frame, issued)
                        batch.append(frame)
                        last_ls = ls
                n_fetch = len(self._fetch)
                n_ctrl = 0
                if self._ctrl:
                    if self._peer_gossip:
                        n_ctrl = len(self._ctrl)
                    else:
                        # the peer never negotiated ``gx``: drop control
                        # frames instead of queueing them forever, or a
                        # mixed cluster would never quiesce (the gossip
                        # loop regenerates digests every round anyway)
                        self._ctrl.clear()
                if not batch and not n_fetch and not n_ctrl:
                    break
                if n_fetch:
                    batch.extend(list(self._fetch)[:n_fetch])
                if n_ctrl:
                    batch.extend(list(self._ctrl)[:n_ctrl])
                await conn.send_many(batch)
                if n_fetch:
                    # fetches are retired on send (fire-and-forget); new
                    # ones enqueued during the await stay for next round
                    for _ in range(n_fetch):
                        self._fetch.popleft()
                for _ in range(n_ctrl):
                    # retired on send but still counted in the backlog
                    # via ``_ctrl_unacked`` until ``sys.ctrl.ok`` lands
                    self._ctrl.popleft()
                    self._ctrl_unacked += 1
                sent = last_ls
            self._wakeup.clear()
            if self._closed:
                return
            await self._wakeup.wait()

    def _next_unsent(self, sent: int) -> Optional[Dict[str, Any]]:
        for ls, msg in self._repl:
            if ls > sent:
                frame = wire.encode_update(msg, ls)
                if self._peer_stats:
                    issued = self._issued_at.get(ls)
                    if issued is not None:
                        wire.stamp_issue(frame, issued)
                return frame
        if self._fetch:
            return self._fetch[0]
        if self._ctrl:
            if self._peer_gossip:
                return self._ctrl[0]
            # non-gx peer: drop rather than hold (see the batched drain)
            self._ctrl.clear()
        return None

    async def _read_replies(self, conn: Connection) -> None:
        while True:
            frame = await conn.recv()
            if frame is None:
                return
            kind = frame.get("t")
            if kind == "repl.ackp":
                # v4 ack: ``ap`` is the gap to the applied watermark
                ack = int(frame["a"])
                self._note_applied(ack - int(frame.get("ap", 0)))
                self._retire(ack)
            elif kind == "repl.ack":
                self._retire(int(frame["a"]))
            elif kind == "sys.ctrl.ok":
                # the peer processed a control frame: its repair effects
                # (if any) are enqueued on the peer's own links now, so
                # they are visible to quiesce there — stop counting here
                self._ctrl_unacked = max(
                    0, self._ctrl_unacked - int(frame.get("n", 1))
                )
            elif kind in ("fetch.ok", "fetch.err"):
                self.owner._resolve_fetch(frame)


class SiteServer:
    """One site of the networked KV cluster (see module docstring)."""

    def __init__(
        self,
        protocol: CausalProtocol,
        addresses: Dict[SiteId, str],
        transport: Transport,
        *,
        sanitizer: Any = None,
        recorder: Any = None,
        metrics: Any = None,
        read_timeout: float = 2.0,
        fetch_timeout: float = 2.0,
        seed: int = 0,
        codec: str = "delta",
        flight_capacity: int = DEFAULT_FLIGHT_CAPACITY,
        flight_dir: Optional[str] = None,
        data_dir: Optional[str] = None,
        fsync: str = "group",
        snapshot_interval: Optional[float] = None,
        gossip_interval: Optional[float] = None,
    ) -> None:
        if protocol.site not in addresses:
            raise ServiceError(f"no address for site {protocol.site}")
        if codec not in wire.PROFILE_CAPS:
            raise ServiceError(
                f"unknown wire profile {codec!r}; choose from "
                f"{sorted(wire.PROFILE_CAPS)}"
            )
        self.protocol = protocol
        self.site: SiteId = protocol.site
        self.addresses = dict(addresses)
        self.transport = transport
        self.sanitizer = sanitizer
        #: the always-on crash ring; ``recorder`` becomes the fan-out of
        #: the user's recorder (if any) and this ring, so every existing
        #: hook site feeds both without a second guard
        self.flight = FlightRecorder(
            capacity=flight_capacity,
            meta={
                "source": "flight",
                "site": int(protocol.site),
                "protocol": protocol.name,
            },
        )
        self.flight.bind_clock(self.now_ms)
        #: where :meth:`flight_dump` writes post-mortems (None = ring
        #: only: crashes still hold history, nothing lands on disk)
        self.flight_dir = flight_dir
        if recorder is not None and recorder.enabled:
            self.recorder = TeeRecorder(recorder, self.flight)
        else:
            self.recorder = self.flight
        # protocol-internal events (dep-log prunes) follow the same
        # fan-out; the server owns its protocol instance exclusively
        protocol.obs = self.recorder
        self.metrics = metrics
        self.read_timeout = read_timeout
        self.fetch_timeout = fetch_timeout
        self.seed = seed
        #: preferred wire profile; ``wire_caps`` is the capability
        #: version announced in handshakes (3 = binary + batched
        #: profile, 4 = delta + interning on top).  A server configured
        #: ``codec="json"`` is a faithful v2 peer (never announces
        #: ``cv`` ≥ 3, never switches a connection) and ``codec=
        #: "binary"`` pins the exact v3 profile, so fallback matrices
        #: and benches can address each generation by name.
        self.codec_name = codec
        self.wire_caps = wire.profile_caps(codec)
        #: the intern table this site advertises in ``cv >= 4``
        #: handshakes: its placement's variable names, so both
        #: directions of a connection resolve against the same list
        self._itab = wire.InternTable(
            wire.intern_table_names(protocol.config.replicas_of)
        )

        #: this incarnation's identity for the link handshake: a
        #: restarted site restarts its link sequence numbers, so it must
        #: not inherit its predecessor's dedup state at the peers.
        #: Durable sites use the WAL's monotone incarnation counter
        #: instead of a random epoch (assigned below, after the WAL
        #: opens), so peers can order incarnations of the same site.
        self.epoch = int.from_bytes(os.urandom(6), "big")
        #: updates whose activation predicate was false on arrival
        self._parked: List[UpdateMessage] = []
        #: arrival timestamp per parked/applied write, for apply spans
        self._recv_at: Dict[WriteId, float] = {}
        #: last contiguously processed link sequence number per sender
        self._seen_ls: Dict[SiteId, int] = {}
        #: sender incarnation the dedup state belongs to, per sender
        self._peer_epoch: Dict[SiteId, int] = {}
        #: per-sender chained-delta decode state (reset on epoch change)
        self._delta_in: Dict[SiteId, wire.DeltaDecoder] = {}
        #: link sequences of currently *parked* updates per sender, plus
        #: the reverse index used to clear them on apply — together they
        #: yield the applied watermark ``ap`` acks advertise
        self._parked_ls: Dict[SiteId, Set[int]] = {}
        self._park_of: Dict[WriteId, Tuple[SiteId, int]] = {}
        #: waiters notified after every apply (strict gates, parked reads)
        self._progress = asyncio.Condition()
        #: number of tasks blocked in ``_wait_for`` — lets the apply hot
        #: path skip the notify task when nobody is waiting
        self._waiting = 0
        self._links: Dict[SiteId, PeerLink] = {}
        self._fetch_waiters: Dict[int, asyncio.Future] = {}
        #: origin issue time (ms) per in-flight write, stripped from
        #: ``repl.t`` frames; consumed at apply into the per-origin
        #: visibility histogram
        self._issue_ms: Dict[WriteId, float] = {}
        #: cached per-origin ``visibility_latency_ms`` histogram handles
        #: (skips the label-formatting lookup on the apply hot path)
        self._vis_hist: Dict[SiteId, Any] = {}
        #: connections whose hello advertised the ``sx`` capability —
        #: the only ones ``sys.stats`` answers (anyone else gets the
        #: pre-stats ``bad-frame`` error)
        self._stats_conns: Set[Connection] = set()
        #: connections whose hello advertised the ``gx`` capability —
        #: the only ones whose ``sys.digest``/``sys.range`` frames are
        #: honoured (same zero-round-trip gating as ``sx``)
        self._gossip_conns: Set[Connection] = set()
        #: established inbound connections, closed on stop()
        self._server_conns: Set[Connection] = set()
        self._listener: Optional[Listener] = None
        self._stopped = asyncio.Event()
        self._t0 = 0.0
        self.applies = 0

        # ---- durability + gossip state -------------------------------
        #: highest applied write sequence per origin site (this site's
        #: own writes included).  Gaps below the watermark are writes
        #: this site does not replicate; writes destined here apply in
        #: origin order (program order at the origin is causal order),
        #: so the maximum doubles as the contiguous floor for
        #: destined-here traffic — the stable timestamp gossip digests
        #: and snapshot coverage are built on.
        self._origin_applied: Dict[SiteId, int] = {}
        #: own write clock -> this site's update messages for that
        #: write, kept until every destination acked (then pruned via
        #: :meth:`_own_retired`) — the corpus gossip repair ships from
        self._own_log: Dict[int, List[UpdateMessage]] = {}
        #: parked updates surviving from a PREVIOUS incarnation of their
        #: sender, per sender (see :meth:`_handle_hello`): while any
        #: exist, the applied watermark advertised to that sender clamps
        #: to 0 so its ack-driven GC cannot prune destinations that have
        #: not actually applied those writes
        self._stale_parked: Dict[SiteId, int] = {}
        self.gossip_interval = gossip_interval
        self.snapshot_interval = snapshot_interval
        self._gossip_task: Optional[asyncio.Task] = None
        self._snapshot_task: Optional[asyncio.Task] = None
        #: the write-ahead log, or None for a memory-only site.  Opening
        #: it bumps the incarnation counter durably and loads any
        #: committed snapshot + WAL suffix, which :meth:`_recover`
        #: replays synchronously before the server takes traffic.
        self.wal: Optional[SiteWal] = None
        #: WAL records replayed by this incarnation's recovery
        self.wal_replayed = 0
        if data_dir is not None:
            self.wal = SiteWal(data_dir, fsync=fsync)
            self.epoch = self.wal.incarnation
            self.wal_replayed = len(self.wal.records)
            recovered = self._recover(self.wal.snapshot, self.wal.records)
            # replayed state is in memory now; drop the parsed copies
            self.wal.snapshot = None
            self.wal.records = []
            if recovered:
                self.metric("service_recoveries_total")
                self.flight_dump("recovery")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        if self._t0 == 0.0:
            self._t0 = loop.time()
        self._listener = await self.transport.listen(
            self.addresses[self.site], self._handle_conn
        )
        if self.wal is not None:
            self.wal.start()
            if self.snapshot_interval is not None and self._snapshot_task is None:
                self._snapshot_task = asyncio.ensure_future(self._snapshot_loop())
        if self.gossip_interval is not None and self._gossip_task is None:
            self._gossip_task = asyncio.ensure_future(self._gossip_loop())

    def set_clock_origin(self, t0: float) -> None:
        """Share one time origin across a co-hosted cluster so recorder
        spans from different sites are mutually ordered."""
        self._t0 = t0

    def now_ms(self) -> float:
        return (asyncio.get_event_loop().time() - self._t0) * 1000.0

    async def stop(self) -> None:
        self._stopped.set()
        # take-then-clear before each await: concurrent stop() calls
        # must not double-close the listener or the links
        for attr in ("_gossip_task", "_snapshot_task"):
            task = getattr(self, attr)
            setattr(self, attr, None)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        listener, self._listener = self._listener, None
        if listener is not None:
            await listener.close()
        # sever established connections so clients see EOF instead of a
        # site that accepts requests it can no longer serve
        for conn in list(self._server_conns):
            await conn.close()
        links = list(self._links.values())
        self._links.clear()
        for link in links:
            await link.close()
        for fut in self._fetch_waiters.values():
            if not fut.done():
                fut.cancel()
        self._fetch_waiters.clear()
        if self.wal is not None:
            self.wal.close()

    @property
    def stopped(self) -> bool:
        return self._stopped.is_set()

    def metric(self, name: str, amount: int = 1, **labels: Any) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, site=self.site, **labels).inc(amount)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_conn(self, conn: Connection) -> None:
        if self.stopped:
            await conn.close()
            return
        self._server_conns.add(conn)
        try:
            while True:
                # the v3+ inbound loop drains every frame already
                # waiting and applies the batch before acking once; a
                # v2 peer keeps PR 5's frame-at-a-time loop
                if conn.agreed_version >= wire.BATCH_WIRE_VERSION:
                    frames = await conn.recv_many()
                    if frames is None:
                        return
                    if self.stopped:
                        # stop() can land between recv and dispatch:
                        # refuse rather than half-serve — a put accepted
                        # here would be acked to the client but never
                        # replicated, the peer links are already closed
                        await conn.send(
                            wire.err_frame(
                                "shutting-down",
                                f"site {self.site} is shutting down",
                            )
                        )
                        return
                    await self._dispatch_batch(conn, frames)
                else:
                    frame = await conn.recv()
                    if frame is None:
                        return
                    if self.stopped:
                        await conn.send(
                            wire.err_frame(
                                "shutting-down",
                                f"site {self.site} is shutting down",
                            )
                        )
                        return
                    await self._dispatch(conn, frame)
        except (ConnectionError, OSError):
            return
        except ServiceUnavailableError as exc:
            # e.g. _link() refusing after stop(); retriable at the client
            try:
                await conn.send(wire.err_frame("shutting-down", str(exc)))
            except (ConnectionError, OSError):
                pass
        except WireError as exc:
            try:
                await conn.send(wire.err_frame("bad-frame", str(exc)))
            except (ConnectionError, OSError):
                pass
        except SanitizerViolation:
            # the causal sanitizer refused a transition: dump the flight
            # ring before this handler task dies — the last moments of
            # the site are exactly what the post-mortem needs
            self.flight_dump("sanitizer-violation")
            raise
        except Exception:
            self.flight_dump("handler-error")
            raise
        finally:
            self._stats_conns.discard(conn)
            self._gossip_conns.discard(conn)
            self._server_conns.discard(conn)
            await conn.close()

    async def _dispatch(self, conn: Connection, frame: Dict[str, Any]) -> None:
        kind = frame["t"]
        if kind == "put":
            await self._handle_put(conn, frame)
        elif kind == "get":
            await self._handle_get(conn, frame)
        elif kind in _REPL_KINDS:
            await self._handle_repl(conn, frame)
        elif kind == "link.hello":
            await self._handle_hello(conn, frame)
        elif kind == "hello":
            await self._handle_client_hello(conn, frame)
        elif kind == "fetch":
            # served in its own task: a strict-mode fetch can block on
            # this site's apply progress, and the repl frames that unblock
            # it arrive on this very connection — inline serving would
            # deadlock the link (head-of-line blocking)
            asyncio.ensure_future(self._handle_fetch(conn, frame))
        elif kind == "sys.stats":
            await self._handle_stats(conn)
        elif kind == "sys.digest":
            await self._handle_digest(conn, frame)
        elif kind == "sys.range":
            await self._handle_range(conn, frame)
        elif kind == "ping":
            await conn.send(wire.make_frame("ping.ok", site=self.site))
        elif kind == "kill":
            await conn.send(wire.make_frame("kill.ok", site=self.site))
            # mark stopped before the async teardown runs so any frame
            # already in flight is refused, not half-served
            self._stopped.set()
            self.flight_dump("chaos-kill-site")
            asyncio.ensure_future(self.stop())
        else:
            await conn.send(wire.err_frame("bad-frame", f"unknown type {kind!r}"))

    async def _dispatch_batch(
        self, conn: Connection, frames: List[Dict[str, Any]]
    ) -> None:
        """The v3 inbound profile: process a whole batch of frames, then
        signal progress once and ack cumulatively.

        ``repl`` frames are ingested synchronously (applied or parked —
        no awaits, preserving the single-writer discipline) while their
        acks are *deferred*: per sender we track the highest contiguous
        sequence processed and emit ONE ``repl.ack`` per batch.  The
        parked-update rescan (:meth:`_drain`) also runs once per batch —
        an update a per-frame drain would have applied mid-batch is
        applied by the batch-end drain instead, before any ack covering
        it is sent, so the ack contract (processed ⇒ in protocol state)
        holds.  Non-repl frames flush pending repl work first so a get
        or fetch arriving behind a burst of updates observes them."""
        acks: Dict[SiteId, int] = {}
        applied = 0
        for frame in frames:
            if self.stopped:
                await self._flush_repl(conn, acks, applied)
                await conn.send(
                    wire.err_frame(
                        "shutting-down", f"site {self.site} is shutting down"
                    )
                )
                return
            if frame["t"] in _REPL_KINDS:
                applied += self._ingest_repl(frame, acks)
            else:
                applied = await self._flush_repl(conn, acks, applied)
                await self._dispatch(conn, frame)
        await self._flush_repl(conn, acks, applied)

    def _ingest_repl(self, frame: Dict[str, Any], acks: Dict[SiteId, int]) -> int:
        """Process one repl frame without acking or draining; returns
        the number of updates applied (0 = dup/gap/parked)."""
        src = int(frame["src"])
        link_seq = int(frame["ls"])
        seen = self._seen_ls.get(src, 0)
        if link_seq <= seen:
            # resend of a frame processed earlier; fold the cumulative
            # re-ack into this batch's ack
            self.metric("service_repl_dups_total")
            acks[src] = max(acks.get(src, 0), seen)
            return 0
        if link_seq != seen + 1:
            # gap: refuse without advancing (see _handle_repl); the ack
            # for the contiguous prefix, if any, still goes out
            self.metric("service_repl_gaps_total")
            return 0
        # strip the issue-time stamp BEFORE the chained-delta decode —
        # the decoder dispatches on the restored base frame type
        it = wire.strip_issue(frame)
        raw = frame.pop("_raw", None)
        if raw is not None and not isinstance(frame.get("var"), str):
            raw = None  # interned var id: the body needs the link's table
        msg = self._decode_repl(src, frame)
        if self.wal is not None:
            # logged before the apply/park decision (and before the
            # origin-dup guard — the guard still ACKS, and an acked
            # link-sequence advance must survive a restart or the
            # sender, which retires on ack, would leave a permanent
            # gap), in the same synchronous block as both
            if raw is not None:
                self.wal.append_raw(raw)
            else:
                self.wal.append(self._wal_repl(msg, link_seq))
        if self._is_origin_dup(msg):
            # a gossip re-ship (or a recovered sender replaying history)
            # delivered a write this site's state already covers: ack
            # and advance the link without touching the protocol —
            # applying it twice would break exactly-once application
            self.metric("service_origin_dups_total")
            self._seen_ls[src] = link_seq
            acks[src] = max(acks.get(src, 0), link_seq)
            return 0
        if it is not None:
            self._issue_ms[msg.write_id] = float(it)
        now = self.now_ms()
        self._recv_at[msg.write_id] = now
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.on_deliver(now, self.site, msg.write_id)
        applied = 0
        if self.protocol.can_apply(msg):
            self._apply(msg)
            applied = 1
        else:
            if rec is not None and rec.enabled:
                rec.on_buffered(
                    now, self.site, msg.write_id, self.protocol.blocking_deps(msg) or ()
                )
            self._park(src, link_seq, msg)
        self._seen_ls[src] = link_seq
        acks[src] = max(acks.get(src, 0), link_seq)
        return applied

    def _is_origin_dup(self, msg: UpdateMessage) -> bool:
        """True when this site already holds the write — applied (at or
        below the origin watermark) or parked.  The guard is what lets
        gossip re-ships overlap normal delivery: the protocols either
        refuse a second apply outright (opt-track's non-monotonic-apply
        check) or would park the duplicate forever (the dense-order
        vector protocols), so a duplicate must be absorbed here."""
        wid = msg.write_id
        return (
            wid.seq <= self._origin_applied.get(wid.site, 0)
            or wid in self._park_of
        )

    @staticmethod
    def _wal_repl(msg: UpdateMessage, link_seq: int) -> Dict[str, Any]:
        """The durable twin of a repl frame: same fields, ``wal.repl``
        type (never interned, never lean — a WAL record must decode with
        no connection state)."""
        frame = wire.encode_update(msg, link_seq)
        frame["t"] = "wal.repl"
        return frame

    def _own_retired(self, msg: UpdateMessage) -> None:
        """A destination acked ``msg`` (it is durable there): release
        this site's own-log copy for that destination.  The entry — and
        with it the write's eligibility for gossip repair — disappears
        once every destination acked."""
        entry = self._own_log.get(msg.write_id.seq)
        if entry is None:
            return
        entry[:] = [m for m in entry if m.dest != msg.dest]
        if not entry:
            del self._own_log[msg.write_id.seq]

    def _decode_repl(self, src: SiteId, frame: Dict[str, Any]) -> UpdateMessage:
        """Decode the contiguous next frame from ``src`` through its
        chained-delta decoder (plain frames pass through, rebaselining).
        Only ``ls == seen + 1`` frames may reach this — duplicates and
        gaps must never touch the chain state."""
        dec = self._delta_in.get(src)
        if dec is None:
            dec = self._delta_in[src] = wire.DeltaDecoder()
        return dec.decode_update(frame, self._itab)

    def _park(self, src: SiteId, link_seq: int, msg: UpdateMessage) -> None:
        """Buffer an update whose activation predicate is false, and
        record its link sequence: the applied watermark ``ap`` stops
        just short of the oldest parked sequence."""
        self._parked.append(msg)
        self._parked_ls.setdefault(src, set()).add(link_seq)
        self._park_of[msg.write_id] = (src, link_seq)

    def _applied_ls(self, src: SiteId) -> int:
        """Highest contiguous link sequence from ``src`` whose update
        was *applied* — the GC watermark acks advertise.  Everything
        processed is applied unless still parked, so this is ``seen``
        capped below the oldest parked sequence.  While updates from a
        PREVIOUS incarnation of ``src`` are still parked the watermark
        clamps to 0: the new incarnation's numbering says nothing about
        them, and advertising progress would let the sender's
        Condition-1 GC prune destinations that never applied those
        writes — a causal-soundness violation, not just a perf bug."""
        if self._stale_parked.get(src):
            return 0
        parked = self._parked_ls.get(src)
        if parked:
            return min(parked) - 1
        return self._seen_ls.get(src, 0)

    async def _flush_repl(
        self, conn: Connection, acks: Dict[SiteId, int], applied: int
    ) -> int:
        """Drain parked updates once for the batch's applies, then send
        one cumulative ack per sender.  Returns the new applied count
        (always 0) for callers that thread it through."""
        if applied:
            self._drain()
        if acks:
            self.metric("service_ack_batches_total")
            for src, ack in acks.items():
                await self._send_ack(conn, ack, src)
            acks.clear()
        return 0

    # ------------------------------------------------------------------
    # put
    # ------------------------------------------------------------------
    async def _handle_put(self, conn: Connection, frame: Dict[str, Any]) -> None:
        var = wire.resolve_var(frame["var"], self._itab)
        value = frame["value"]
        now = self.now_ms()
        proto = self.protocol
        result: WriteResult = proto.write(var, value)
        if self.wal is not None:
            self.wal.append(
                wire.make_frame(
                    "wal.put",
                    var=var,
                    value=value,
                    w=wire.encode_write_id(result.write_id),
                )
            )
        if result.write_id.seq > self._origin_applied.get(self.site, 0):
            self._origin_applied[self.site] = result.write_id.seq
        if result.messages:
            # kept until every destination acks (see _own_retired); the
            # corpus gossip repair re-ships missing updates from
            self._own_log[result.write_id.seq] = list(result.messages)
        if self.sanitizer is not None:
            self.sanitizer.on_write(
                self.site,
                var,
                result.write_id,
                tuple(proto.replicas(var)),
                result.applied_locally,
                now=now,
            )
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.on_issue(now, self.site, var, result.write_id, proto.replicas(var))
        for msg in result.messages:
            if rec is not None and rec.enabled:
                rec.on_send(now, self.site, msg.dest, msg.write_id)
            self._link(msg.dest).enqueue_update(msg)
        if result.applied_locally:
            self._drain()
        self.metric("service_requests_total", op="put")
        await conn.send(
            wire.make_frame("put.ok", w=wire.encode_write_id(result.write_id))
        )

    # ------------------------------------------------------------------
    # get
    # ------------------------------------------------------------------
    async def _handle_get(self, conn: Connection, frame: Dict[str, Any]) -> None:
        var = wire.resolve_var(frame["var"], self._itab)
        proto = self.protocol
        self.metric("service_requests_total", op="get")
        if proto.locally_replicates(var):
            if not await self._wait_for(lambda: proto.can_read_local(var)):
                self.metric("service_read_timeouts_total")
                await conn.send(
                    wire.err_frame(
                        "read-timeout",
                        f"local read of {var!r} still causally gated after "
                        f"{self.read_timeout}s",
                    )
                )
                return
            value, wid = proto.read_local(var)
            if self.wal is not None:
                # reads mutate protocol state (the deferred ~>co merge
                # of LastWriteOn metadata), so they are logged: losing a
                # read-merge across a crash would let post-recovery
                # writes under-state their causal past
                self.wal.append(wire.make_frame("wal.read", var=var))
            served_by = self.site
        else:
            try:
                value, wid = await self._remote_get(var)
            except (ServiceUnavailableError, asyncio.TimeoutError) as exc:
                self.metric("service_fetch_failures_total")
                await conn.send(wire.err_frame("unavailable", str(exc)))
                return
            served_by = proto.fetch_target(var)
        now = self.now_ms()
        if self.sanitizer is not None:
            self.sanitizer.on_read(self.site, var, wid, now=now)
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.on_read(now, self.site, var, wid)
        await conn.send(
            wire.make_frame(
                "get.ok", value=value, w=wire.encode_write_id(wid), by=served_by
            )
        )

    async def _remote_get(self, var: VarId) -> Tuple[Any, Optional[WriteId]]:
        """The paper's RemoteFetch, run on the client's behalf."""
        proto = self.protocol
        server = proto.fetch_target(var)
        link = self._link(server)
        stale = 0
        while True:
            req = proto.make_fetch_request(var, server)
            fut: asyncio.Future = asyncio.get_running_loop().create_future()
            self._fetch_waiters[req.fetch_id] = fut
            link.enqueue_fetch(req)
            try:
                frame = await asyncio.wait_for(fut, self.fetch_timeout)
            except asyncio.TimeoutError:
                raise ServiceUnavailableError(
                    f"fetch of {var!r} from site {server} timed out after "
                    f"{self.fetch_timeout}s"
                ) from None
            finally:
                self._fetch_waiters.pop(req.fetch_id, None)
            if frame["t"] == "fetch.err":
                raise ServiceUnavailableError(
                    f"site {server} could not serve {var!r}: "
                    f"{frame.get('code')} ({frame.get('msg')})"
                )
            # an interned var id resolves against the table the serving
            # site advertised at its handshake (held by our peer link);
            # every site derives the same table from the shared
            # placement map, so our own copy is the fallback
            link = self._links.get(server)
            enc = link._delta_out if link is not None else None
            reply = wire.decode_fetch_reply(
                frame, enc.itab if enc is not None else self._itab
            )
            if proto.reply_is_fresh(reply):
                if self.wal is not None:
                    # same reasoning as wal.read: completing a remote
                    # read merges the reply's metadata into local state
                    self.wal.append(
                        wire.make_frame(
                            "wal.rfetch",
                            var=reply.var,
                            value=reply.value,
                            w=wire.encode_write_id(reply.write_id),
                            sv=reply.server,
                            meta=wire.encode_meta(reply.meta),
                            applied=wire.encode_meta(reply.applied),
                        )
                    )
                return proto.complete_remote_read(reply)
            # lenient-mode stale reply: discard without merging its
            # metadata and re-issue once the in-flight update had a
            # moment to land (same gate as repro.sim.process._do_read)
            stale += 1
            self.metric("service_stale_replies_total")
            if stale > MAX_STALE_FETCH_RETRIES:
                raise ServiceUnavailableError(
                    f"remote read of {var!r} stale after {stale - 1} retries: "
                    f"site {server} never applied a causally required update"
                )
            await asyncio.sleep(STALE_RETRY_PAUSE * stale)

    def _resolve_fetch(self, frame: Dict[str, Any]) -> None:
        fut = self._fetch_waiters.pop(int(frame["fid"]), None)
        if fut is not None and not fut.done():
            fut.set_result(frame)

    # ------------------------------------------------------------------
    # peer traffic
    # ------------------------------------------------------------------
    async def _handle_hello(self, conn: Connection, frame: Dict[str, Any]) -> None:
        src = int(frame["src"])
        epoch = int(frame["epoch"])
        if self._peer_epoch.get(src) != epoch:
            # a new sender incarnation restarts its link sequence at 1:
            # the dedup high-water mark must restart with it, or every
            # frame from the restarted site would be dropped as a dup —
            # and the delta chain and parked-sequence bookkeeping refer
            # to the old incarnation's numbering, so they restart too.
            # The parked updates themselves are KEPT: they were acked to
            # the dead incarnation, which may have pruned them from its
            # own log, so dropping them here could lose them forever.
            # They survive re-keyed to the sentinel sequence 0 (their
            # old numbering is meaningless now) and counted in
            # ``_stale_parked``, which clamps the applied watermark this
            # site advertises to the new incarnation (see _applied_ls).
            if self.wal is not None:
                self.wal.append(
                    wire.make_frame("wal.hello", src=src, epoch=epoch)
                )
            self._peer_epoch[src] = epoch
            self._seen_ls[src] = 0
            self._delta_in.pop(src, None)
            stale = 0
            for wid, (s, ls) in list(self._park_of.items()):
                if s == src and ls:
                    self._park_of[wid] = (src, 0)
                    stale += 1
            if stale:
                self._stale_parked[src] = self._stale_parked.get(src, 0) + stale
            self._parked_ls.pop(src, None)
        agreed = self._agree_version(frame)
        # the link.ok itself always travels under the codec the hello
        # arrived with (JSON for any pre-negotiation sender); only the
        # frames AFTER the handshake switch.  At cv >= 4 it also carries
        # this site's intern table and applied watermark (see _send_ack)
        ok: Dict[str, Any] = {
            "site": self.site,
            "ack": self._seen_ls.get(src, 0),
            "cv": agreed,
        }
        if agreed >= wire.DELTA_WIRE_VERSION:
            ok["itab"] = list(self._itab.names)
            ok["ap"] = self._applied_ls(src)
        if int(frame.get("sx", 0)) >= wire.STATS_CAPABILITY:
            # echo the stats capability (orthogonal to ``cv``): the
            # sender may now stamp repl frames and ask ``sys.stats``
            ok["sx"] = wire.STATS_CAPABILITY
            self._stats_conns.add(conn)
        if int(frame.get("gx", 0)) >= wire.GOSSIP_CAPABILITY:
            # echo the gossip capability: this connection may now send
            # ``sys.digest``/``sys.range`` control frames (same
            # zero-round-trip pattern as ``sx``; a pre-durability peer
            # never sees either side of it)
            ok["gx"] = wire.GOSSIP_CAPABILITY
            self._gossip_conns.add(conn)
        await conn.send(wire.make_frame("link.ok", **ok))
        self._switch_profile(conn, agreed)

    async def _handle_client_hello(
        self, conn: Connection, frame: Dict[str, Any]
    ) -> None:
        """Client codec negotiation.  A v2 server answers this frame
        with ``err bad-frame`` (unknown type), which v3 clients take as
        "stay on JSON" — that asymmetry is the whole fallback story."""
        agreed = self._agree_version(frame)
        ok: Dict[str, Any] = {"site": self.site, "cv": agreed}
        if agreed >= wire.DELTA_WIRE_VERSION:
            ok["itab"] = list(self._itab.names)
        if int(frame.get("sx", 0)) >= wire.STATS_CAPABILITY:
            ok["sx"] = wire.STATS_CAPABILITY
            self._stats_conns.add(conn)
        await conn.send(wire.make_frame("hello.ok", **ok))
        self._switch_profile(conn, agreed)

    def _agree_version(self, frame: Dict[str, Any]) -> int:
        """Meet of the peer's announced capability and our own.  A peer
        that says nothing is a v2 peer."""
        peer_caps = int(frame.get("cv", wire.JSON_WIRE_VERSION))
        return min(peer_caps, self.wire_caps)

    def _switch_profile(self, conn: Connection, agreed: int) -> None:
        if agreed >= wire.BATCH_WIRE_VERSION:
            conn.negotiate(wire.codec_for(agreed), agreed)
            self.metric(
                "service_wire_negotiations_total",
                codec="delta" if agreed >= wire.DELTA_WIRE_VERSION else "binary",
            )
        else:
            self.metric("service_wire_negotiations_total", codec="json")

    async def _handle_repl(self, conn: Connection, frame: Dict[str, Any]) -> None:
        src = int(frame["src"])
        link_seq = int(frame["ls"])
        seen = self._seen_ls.get(src, 0)
        if link_seq <= seen:
            # resend of a frame processed over an earlier connection;
            # re-ack cumulatively so the sender can retire it
            self.metric("service_repl_dups_total")
            await self._send_ack(conn, seen, src)
            return
        if link_seq != seen + 1:
            # gap: an earlier frame of this link was lost in flight.
            # Don't ack, don't advance — advancing here would silently
            # skip the lost update forever; the sender renegotiates from
            # the last contiguous ack at its next handshake and resends.
            self.metric("service_repl_gaps_total")
            return
        it = wire.strip_issue(frame)
        raw = frame.pop("_raw", None)
        if raw is not None and not isinstance(frame.get("var"), str):
            raw = None  # interned var id: the body needs the link's table
        msg = self._decode_repl(src, frame)
        if self.wal is not None:
            # see _ingest_repl: before the dup guard, because the guard
            # acks, and an acked advance must survive a restart
            if raw is not None:
                self.wal.append_raw(raw)
            else:
                self.wal.append(self._wal_repl(msg, link_seq))
        if self._is_origin_dup(msg):
            self.metric("service_origin_dups_total")
            self._seen_ls[src] = link_seq
            await self._send_ack(conn, link_seq, src)
            return
        if it is not None:
            self._issue_ms[msg.write_id] = float(it)
        now = self.now_ms()
        self._recv_at[msg.write_id] = now
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.on_deliver(now, self.site, msg.write_id)
        if self.protocol.can_apply(msg):
            self._apply(msg)
            self._drain()
        else:
            if rec is not None and rec.enabled:
                rec.on_buffered(
                    now, self.site, msg.write_id, self.protocol.blocking_deps(msg) or ()
                )
            self._park(src, link_seq, msg)
        # the ack follows processing (applied or parked), so an acked
        # frame is guaranteed to be inside this site's protocol state
        self._seen_ls[src] = link_seq
        await self._send_ack(conn, link_seq, src)

    async def _send_ack(self, conn: Connection, ack: int, src: SiteId) -> None:
        try:
            if conn.agreed_version >= wire.DELTA_WIRE_VERSION:
                # the applied watermark rides every ack on a v4 link as
                # the gap ``ack - applied`` (usually 0 — one byte); a
                # pre-v4 sender gets the bare v2/v3 ack shape unchanged
                await conn.send(
                    wire.make_frame(
                        "repl.ackp", a=ack, ap=ack - self._applied_ls(src)
                    )
                )
            else:
                await conn.send(wire.make_frame("repl.ack", a=ack))
        except (ConnectionError, OSError):
            # sender is gone; it relearns the ack at its next handshake
            pass

    async def _handle_fetch(self, conn: Connection, frame: Dict[str, Any]) -> None:
        req = wire.decode_fetch_request(frame)
        proto = self.protocol
        if not await self._wait_for(lambda: proto.can_serve_fetch(req)):
            self.metric("service_fetch_defer_timeouts_total")
            try:
                await conn.send(
                    wire.make_frame(
                        "fetch.err",
                        fid=req.fetch_id,
                        code="read-timeout",
                        msg=f"strict fetch of {req.var!r} still causally "
                        f"gated after {self.read_timeout}s",
                    )
                )
            except (ConnectionError, OSError):
                pass
            return
        reply = proto.serve_fetch(req)
        try:
            v4 = conn.agreed_version >= wire.DELTA_WIRE_VERSION
            await conn.send(
                wire.encode_fetch_reply(
                    reply,
                    compact=v4,
                    # our own advertised table — the requester holds a
                    # copy from this link's handshake
                    itab=self._itab if v4 else None,
                )
            )
        except (ConnectionError, OSError):
            # requester is gone; its timeout/failover handles the loss
            pass

    # ------------------------------------------------------------------
    # durability + gossip anti-entropy
    # ------------------------------------------------------------------
    async def _handle_digest(self, conn: Connection, frame: Dict[str, Any]) -> None:
        """Answer a peer's watermark digest — only on connections whose
        hello advertised ``gx`` (same gating as ``sys.stats``).  The
        repair itself is synchronous, so every re-shipped update is on a
        link queue — visible to quiesce — before the ``sys.ctrl.ok``
        releases the sender's in-flight control accounting."""
        if conn not in self._gossip_conns:
            await conn.send(
                wire.err_frame("bad-frame", "unknown type 'sys.digest'")
            )
            return
        shipped = gossip_proto.handle_digest(self, frame)
        if shipped:
            self.metric("service_gossip_pushes_total", shipped)
        await conn.send(wire.make_frame("sys.ctrl.ok", n=1))

    async def _handle_range(self, conn: Connection, frame: Dict[str, Any]) -> None:
        """Serve a peer's own-origin range request (see the gossip
        module); acked with ``sys.ctrl.ok`` after the re-ships are
        enqueued, like digests."""
        if conn not in self._gossip_conns:
            await conn.send(
                wire.err_frame("bad-frame", "unknown type 'sys.range'")
            )
            return
        shipped = gossip_proto.handle_range(self, frame)
        self.metric("service_gossip_ranges_total")
        if shipped:
            self.metric("service_gossip_pushes_total", shipped)
        await conn.send(wire.make_frame("sys.ctrl.ok", n=1))

    async def _gossip_loop(self) -> None:
        """Round-robin one digest per interval (with jitter, so a
        co-hosted cluster's rounds interleave instead of thundering)."""
        rng = np.random.default_rng(
            (self.seed * 9_176_471 + self.site) & 0x7FFFFFFF
        )
        peers = sorted(s for s in self.addresses if s != self.site)
        if not peers:
            return
        i = int(rng.integers(0, len(peers)))
        while not self.stopped:
            await asyncio.sleep(
                self.gossip_interval * (0.75 + 0.5 * float(rng.uniform()))
            )
            if self.stopped:
                return
            try:
                link = self._link(peers[i % len(peers)])
            except ServiceUnavailableError:
                return
            i += 1
            link.enqueue_ctrl(gossip_proto.digest_frame(self))
            self.metric("service_gossip_digests_total")

    async def _snapshot_loop(self) -> None:
        while not self.stopped:
            await asyncio.sleep(self.snapshot_interval)
            if self.stopped:
                return
            await self.snapshot_now()

    async def snapshot_now(self) -> None:
        """Capture a stable-timestamp snapshot and retire the WAL prefix
        it covers.  Capture and WAL rotation are one synchronous block —
        the snapshot and the rotation point describe the same instant —
        and only the durable commit (tmp + fsync + rename, then segment
        unlink, in that order) runs off-loop."""
        wal = self.wal
        if wal is None or self.stopped:
            return
        frame = self._snapshot_frame()
        covered = wal.begin_snapshot()
        await wal.commit_snapshot(frame, covered)
        self.metric("service_snapshots_total")

    def _snapshot_frame(self) -> Dict[str, Any]:
        """Everything a restart needs beyond the WAL suffix, as plain
        wire-encodable data: protocol state, per-link dedup watermarks
        and peer epochs, per-origin stable timestamps, parked updates
        (stale ones under the sentinel sequence 0), and the unacked
        own-write log."""
        seen: List[int] = []
        for s in sorted(self._seen_ls):
            seen.extend((int(s), int(self._seen_ls[s])))
        epochs: List[int] = []
        for s in sorted(self._peer_epoch):
            epochs.extend((int(s), int(self._peer_epoch[s])))
        origin: List[int] = []
        for s in sorted(self._origin_applied):
            origin.extend((int(s), int(self._origin_applied[s])))
        parked: List[List[Any]] = []
        for msg in self._parked:
            src, ls = self._park_of.get(msg.write_id, (msg.sender, 0))
            parked.append([int(src), int(ls), wire.encode_update(msg, int(ls))])
        own: List[Dict[str, Any]] = []
        for clock in sorted(self._own_log):
            for msg in self._own_log[clock]:
                own.append(wire.encode_update(msg, 0))
        return wire.make_frame(
            "snap",
            site=int(self.site),
            inc=int(self.epoch),
            applies=int(self.applies),
            proto=self.protocol.state_snapshot(),
            seen=seen,
            epochs=epochs,
            origin=origin,
            parked=parked,
            own=own,
        )

    def _recover(
        self,
        snapshot: Optional[Dict[str, Any]],
        records: List[Dict[str, Any]],
    ) -> bool:
        """Rebuild in-memory state from the committed snapshot plus the
        WAL suffix.  Runs in ``__init__``, strictly before the server
        takes traffic, with no observers: the sanitizer, recorder, and
        metrics already saw these transitions when they happened live.
        Returns True when there was anything to recover."""
        if snapshot is None and not records:
            return False
        if snapshot is not None:
            if int(snapshot.get("site", self.site)) != int(self.site):
                raise WalCorruptionError(
                    f"snapshot belongs to site {snapshot.get('site')}, "
                    f"not site {self.site} (wrong data dir?)"
                )
            self.protocol.state_restore(snapshot["proto"])
            it = iter(snapshot.get("seen") or ())
            self._seen_ls = {int(s): int(v) for s, v in zip(it, it)}
            it = iter(snapshot.get("epochs") or ())
            self._peer_epoch = {int(s): int(v) for s, v in zip(it, it)}
            it = iter(snapshot.get("origin") or ())
            self._origin_applied = {int(s): int(v) for s, v in zip(it, it)}
            self.applies = int(snapshot.get("applies", 0))
            for src, ls, f in snapshot.get("parked") or ():
                msg = wire.decode_update(f)
                self._parked.append(msg)
                self._park_of[msg.write_id] = (int(src), int(ls))
                if int(ls):
                    self._parked_ls.setdefault(int(src), set()).add(int(ls))
                else:
                    self._stale_parked[int(src)] = (
                        self._stale_parked.get(int(src), 0) + 1
                    )
            for f in snapshot.get("own") or ():
                msg = wire.decode_update(f)
                self._own_log.setdefault(msg.write_id.seq, []).append(msg)
        for frame in records:
            self._replay(frame)
        return True

    def _replay(self, frame: Dict[str, Any]) -> None:
        """Re-run one WAL record against the protocol.  Deterministic
        relative to the live run: apply/park decisions depend only on
        the message metadata and the apply clocks, and both are exactly
        what they were when the record was written.  Ack-driven GC
        effects (``note_remote_apply``) are NOT replayed — a recovered
        site carries fatter dependency logs, which is a safe
        over-approximation."""
        kind = frame["t"]
        if kind == "wal.put":
            var = frame["var"]
            result = self.protocol.write(var, frame["value"])
            logged = wire.decode_write_id(frame["w"])
            if result.write_id != logged:
                raise WalCorruptionError(
                    f"replaying the WAL regenerated write {result.write_id} "
                    f"for {var!r} where the log says {logged} — snapshot "
                    f"and WAL disagree; refusing to diverge"
                )
            if result.write_id.seq > self._origin_applied.get(self.site, 0):
                self._origin_applied[self.site] = result.write_id.seq
            if result.messages:
                self._own_log[result.write_id.seq] = list(result.messages)
            if result.applied_locally:
                self._drain(replay=True)
        elif kind in ("wal.repl", "repl", "repl.t"):
            # raw-passthrough records (SiteWal.append_raw) keep their
            # on-wire type and may carry an issue stamp; live frames
            # never reach the log un-renamed, so a plain repl kind in
            # the WAL is unambiguously a logged replicated update
            wire.strip_issue(frame)
            src = int(frame["src"])
            ls = int(frame["ls"])
            msg = wire.decode_update(frame)
            if not self._is_origin_dup(msg):
                if self.protocol.can_apply(msg):
                    self._apply(msg, replay=True)
                    self._drain(replay=True)
                else:
                    self._park(src, ls, msg)
            if ls > self._seen_ls.get(src, 0):
                self._seen_ls[src] = ls
        elif kind == "wal.hello":
            # mirror of _handle_hello's epoch-change block: reset the
            # dedup state, keep parked updates under the stale sentinel
            src = int(frame["src"])
            self._peer_epoch[src] = int(frame["epoch"])
            self._seen_ls[src] = 0
            stale = 0
            for wid, (s, ls) in list(self._park_of.items()):
                if s == src and ls:
                    self._park_of[wid] = (src, 0)
                    stale += 1
            if stale:
                self._stale_parked[src] = self._stale_parked.get(src, 0) + stale
            self._parked_ls.pop(src, None)
        elif kind == "wal.read":
            # reads mutate state (the deferred ~>co merge) — that is the
            # only reason they are in the log at all
            self.protocol.read_local(frame["var"])
        elif kind == "wal.rfetch":
            reply = FetchReply(
                var=frame["var"],
                value=frame["value"],
                write_id=wire.decode_write_id(frame["w"]),
                server=int(frame["sv"]),
                requester=self.site,
                fetch_id=0,
                meta=wire.decode_meta(frame["meta"]),
                applied=wire.decode_meta(frame["applied"]),
            )
            self.protocol.complete_remote_read(reply)
        else:
            raise WalCorruptionError(f"unknown WAL record type {kind!r}")

    # ------------------------------------------------------------------
    # observability plane
    # ------------------------------------------------------------------
    async def _handle_stats(self, conn: Connection) -> None:
        """Answer ``sys.stats`` — but only on connections whose hello
        advertised the ``sx`` capability.  Anyone else gets exactly the
        ``bad-frame`` error a pre-stats server sends for an unknown
        type, so probing an old server and probing a non-negotiated
        connection are indistinguishable (zero-round-trip negotiation:
        the capability travels on the hello both sides already send)."""
        if conn not in self._stats_conns:
            await conn.send(
                wire.err_frame("bad-frame", "unknown type 'sys.stats'")
            )
            return
        self.metric("service_requests_total", op="stats")
        snapshot = self._stats_snapshot()
        await conn.send(
            wire.make_frame("sys.stats.ok", site=self.site, stats=snapshot)
        )

    def _stats_snapshot(self) -> Dict[str, Any]:
        """One synchronous stats snapshot (single-writer discipline: no
        awaits, so nothing here sees a half-applied protocol state).
        Keys of the per-peer maps are stringified site ids so the JSON
        and binary codecs carry the identical shape."""
        self.refresh_gauges()
        links: Dict[str, Any] = {}
        for dest in sorted(self._links):
            links[str(int(dest))] = self._links[dest].stats()
        inbound: Dict[str, Any] = {}
        for src in sorted(self._seen_ls):
            inbound[str(int(src))] = {
                "seen": self._seen_ls[src],
                "applied": self._applied_ls(src),
                "parked": len(self._parked_ls.get(src, ())),
            }
        snap: Dict[str, Any] = {
            "site": int(self.site),
            "epoch": int(self.epoch),
            "uptime_ms": self.now_ms(),
            "applies": int(self.applies),
            "parked": len(self._parked),
            "store_keys": self._store_keys(),
            "dep_log": self._dep_log_stats(),
            "links": links,
            "inbound": inbound,
            "flight": {
                "capacity": self.flight.capacity,
                "recorded": self.flight.recorded,
                "dropped": self.flight.dropped,
                "held": len(self.flight),
            },
            "wire": {"profile": self.codec_name, "caps": self.wire_caps},
            "origin_applied": {
                str(int(s)): int(v)
                for s, v in sorted(self._origin_applied.items())
            },
            "own_log": len(self._own_log),
            "stale_parked": sum(self._stale_parked.values()),
        }
        if self.wal is not None:
            snap["durability"] = {
                "incarnation": int(self.wal.incarnation),
                "fsync": self.wal.fsync_mode,
                "records_appended": self.wal.records_appended,
                "bytes_appended": self.wal.bytes_appended,
                "raw_appends": self.wal.raw_appends,
                "fsyncs": self.wal.fsyncs,
                "snapshots": self.wal.snapshots,
            }
        if self.metrics is not None:
            snap["metrics"] = self.metrics.snapshot()
        return snap

    def refresh_gauges(self) -> None:
        """Recompute the scrape-time gauges from live structures: link
        replication lag (enqueued−acked and acked−applied), parked
        depth, dependency-log size, store size.  Runs before every
        stats reply and as the Prometheus responder's per-scrape
        refresh — gauges are views, so the request hot paths never pay
        for them."""
        m = self.metrics
        if m is None:
            return
        for dest in sorted(self._links):
            stats = self._links[dest].stats()
            m.gauge("link_unacked_count", site=self.site, peer=dest).set(
                stats["unacked"]
            )
            if stats["applied"] is not None:
                m.gauge("link_unapplied_count", site=self.site, peer=dest).set(
                    stats["acked"] - stats["applied"]
                )
        m.gauge("parked_updates_count", site=self.site).set(len(self._parked))
        m.gauge("own_log_entries_count", site=self.site).set(len(self._own_log))
        if self.wal is not None:
            m.gauge("wal_records_count", site=self.site).set(
                self.wal.records_appended
            )
            m.gauge("wal_appended_bytes", site=self.site).set(
                self.wal.bytes_appended
            )
        dep = self._dep_log_stats()
        m.gauge("dep_log_entries_count", site=self.site).set(dep["entries"])
        m.gauge("dep_log_bytes", site=self.site).set(dep["bytes"])
        m.gauge("store_keys_count", site=self.site).set(self._store_keys())

    def _store_keys(self) -> int:
        # every protocol stores its local replicas in the base class's
        # ``_values`` map; sibling-package access beats adding a public
        # len API to the protocol ABC for one gauge
        values = getattr(self.protocol, "_values", None)
        return len(values) if values is not None else 0

    def _dep_log_stats(self) -> Dict[str, int]:
        """Dependency-log size in entries and wire bytes (the binary
        encoding of its full metadata — what a fresh connection's first
        frame would pay).  Zero for protocols without an explicit
        DepLog (Full-Track's matrix clock, Opt-Track-CRP's scalars)."""
        log = getattr(self.protocol, "log", None)
        if not isinstance(log, DepLog) or len(log) == 0:
            return {"entries": 0, "bytes": 0}
        encoded = wire.BINARY_CODEC.encode(
            wire.make_frame("sys.stats.ok", p=wire.encode_meta(log))
        )
        return {"entries": len(log), "bytes": len(encoded)}

    def _visibility(self, origin: SiteId) -> Any:
        hist = self._vis_hist.get(origin)
        if hist is None:
            hist = self._vis_hist[origin] = self.metrics.histogram(
                "visibility_latency_ms", site=self.site, origin=origin
            )
        return hist

    def flight_dump(self, reason: str) -> Optional[str]:
        """Dump the flight ring as a post-mortem JSONL artifact named
        after this site and the trigger.  A no-op unless ``flight_dir``
        is configured; dump failures are swallowed — a post-mortem must
        never turn a dying handler's error into a different one."""
        if self.flight_dir is None:
            return None
        path = os.path.join(
            self.flight_dir, f"site-{int(self.site)}-{reason}.jsonl"
        )
        try:
            return self.flight.dump(path, reason)
        except OSError:
            return None

    # ------------------------------------------------------------------
    # apply machinery (single-writer: everything below is synchronous)
    # ------------------------------------------------------------------
    def _apply(self, msg: UpdateMessage, replay: bool = False) -> None:
        now = 0.0 if replay else self.now_ms()
        if not replay and self.sanitizer is not None:
            self.sanitizer.before_apply(self.protocol, msg, now=now)
            self.protocol.apply_update(msg)
            self.sanitizer.after_apply(self.protocol, msg, now=now)
        else:
            # replay bypasses the sanitizer entirely: these transitions
            # were checked when they happened live, and the sanitizer's
            # cross-site state still remembers them
            self.protocol.apply_update(msg)
        self.applies += 1
        wid = msg.write_id
        if wid.seq > self._origin_applied.get(wid.site, 0):
            # the per-origin stable timestamp: gaps below it are writes
            # this site does not replicate (writes destined here apply
            # in origin order, so the max is also the destined-here
            # contiguous floor) — the unit gossip digests and snapshot
            # coverage are denominated in
            self._origin_applied[wid.site] = wid.seq
        park = self._park_of.pop(wid, None)
        if park is not None:
            # a formerly parked update applied: the applied watermark
            # for its sender may advance past its link sequence now
            src, link_seq = park
            if link_seq == 0:
                # a stale park from a dead incarnation of its sender
                # (see _handle_hello): release the GC clamp with it
                n = self._stale_parked.get(src, 0) - 1
                if n > 0:
                    self._stale_parked[src] = n
                else:
                    self._stale_parked.pop(src, None)
            else:
                parked = self._parked_ls.get(src)
                if parked is not None:
                    parked.discard(link_seq)
                    if not parked:
                        del self._parked_ls[src]
        if replay:
            return
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.on_apply(
                now,
                self.site,
                msg.var,
                msg.write_id,
                self._recv_at.pop(msg.write_id, now),
            )
        issued = self._issue_ms.pop(msg.write_id, None)
        if issued is not None and self.metrics is not None:
            # issue→local-apply, as stamped by the origin (clamped: the
            # two clocks share an origin on co-hosted clusters but may
            # skew across hosts)
            self._visibility(msg.write_id.site).observe(max(0.0, now - issued))
        self.metric("service_applies_total")

    def _drain(self, replay: bool = False) -> None:
        """Re-evaluate parked updates to a fixpoint, then wake waiters."""
        progressed = True
        while progressed:
            progressed = False
            for i, msg in enumerate(self._parked):
                if self.protocol.can_apply(msg):
                    del self._parked[i]
                    self._apply(msg, replay)
                    progressed = True
                    break
        if not replay:
            self._notify_progress()

    def _notify_progress(self) -> None:
        # waking waiters needs the condition lock, i.e. a task — skip
        # the task creation entirely on the hot path when nobody waits
        if self._waiting == 0:
            return

        async def _notify() -> None:
            async with self._progress:
                self._progress.notify_all()

        asyncio.ensure_future(_notify())

    async def _wait_for(self, predicate) -> bool:
        """Await ``predicate()`` becoming true on apply progress, bounded
        by ``read_timeout``.  False on expiry (the caller degrades to a
        retriable error — the service never holds a request forever)."""
        if predicate():
            return True
        self._waiting += 1
        try:
            async with self._progress:
                try:
                    await asyncio.wait_for(
                        self._progress.wait_for(predicate), self.read_timeout
                    )
                    return True
                except asyncio.TimeoutError:
                    return False
        finally:
            self._waiting -= 1

    def _link(self, dest: SiteId) -> PeerLink:
        if self.stopped:
            # a stopped site must never enqueue traffic on a link with
            # no sender task behind it — the frame would sit there while
            # the caller believes it is on its way
            raise ServiceUnavailableError(f"site {self.site} is stopped")
        link = self._links.get(dest)
        if link is None:
            link = PeerLink(self, dest, self.addresses[dest])
            link.start()
            self._links[dest] = link
        return link


__all__ = [
    "SiteServer",
    "PeerLink",
    "MAX_STALE_FETCH_RETRIES",
    "LINK_HANDSHAKE_TIMEOUT",
]
