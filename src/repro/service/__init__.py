"""Networked KV service running the causal protocols over real sockets.

The simulator (:mod:`repro.sim`) exercises the protocols under simulated
time; this package serves them for real: one asyncio TCP server per site
(:mod:`repro.service.server`), a failure-aware client library
(:mod:`repro.service.client`), a versioned length-prefixed JSON wire
format (:mod:`repro.service.wire`), and a deterministic in-process
loopback transport (:mod:`repro.service.transport`) so the whole stack —
including the causal sanitizer — runs socket-free in unit tests and CI.

``repro-kv`` (:mod:`repro.service.cli`) is the operational front end:
``serve``, ``put``/``get``, ``bench`` (YCSB load via
:mod:`repro.service.loadgen`), ``chaos-kill-site``, and the CI ``smoke``
gate.  See ``docs/service.md`` for the architecture.
"""

from repro.service.client import KVClient
from repro.service.harness import ServiceCluster
from repro.service.loadgen import LoadGenerator, LoadReport
from repro.service.server import SiteServer
from repro.service.transport import LoopbackTransport, TcpTransport
from repro.service.wire import WIRE_VERSION

__all__ = [
    "KVClient",
    "ServiceCluster",
    "LoadGenerator",
    "LoadReport",
    "SiteServer",
    "LoopbackTransport",
    "TcpTransport",
    "WIRE_VERSION",
]
