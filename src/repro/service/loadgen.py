"""Closed-loop load generator for the KV service.

One :class:`LoadGenerator` drives a YCSB workload (:mod:`repro.workload.
ycsb`) against a running cluster: per site, one client session (home =
that site) executes its generated operation script **closed-loop** — the
next operation is issued only after the previous one completed — which is
the paper's one-application-process-per-site model and keeps throughput a
direct measure of service latency.

Every request is timed into per-operation latency histograms on a
:class:`~repro.obs.registry.MetricsRegistry` (wall-clock milliseconds on
the shared ``DEFAULT_TIME_BUCKETS_MS`` ladder), and the summary reports
throughput plus p50/p99 from those same histograms — the single metrics
pipeline shared with the simulator, so ``repro-kv bench`` output merges
and diffs like any other registry snapshot.

A site killed mid-run surfaces here as failovers, not failures: the
clients retry with backoff and degrade to surviving replicas; only
requests that exhausted every candidate are counted as errors.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServiceUnavailableError
from repro.obs.registry import MetricsRegistry
from repro.service.harness import ServiceCluster
from repro.types import Operation, SiteId
from repro.workload.ycsb import ycsb


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    ops: int
    errors: int
    elapsed_s: float
    #: requests that succeeded only after failing over off the home site
    failovers: int
    latency_ms: Dict[str, Dict[str, Optional[float]]] = field(default_factory=dict)
    served_by: Dict[SiteId, int] = field(default_factory=dict)

    @property
    def ops_per_s(self) -> float:
        return self.ops / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready summary, used by the ``BENCH_service.json`` ledger."""
        return {
            "ops": self.ops,
            "errors": self.errors,
            "elapsed_s": self.elapsed_s,
            "failovers": self.failovers,
            "ops_per_s": self.ops_per_s,
            "latency_ms": self.latency_ms,
            "served_by": {str(s): c for s, c in sorted(self.served_by.items())},
        }

    def format(self) -> str:
        lines = [
            f"ops        {self.ops} ({self.errors} errors, "
            f"{self.failovers} failovers)",
            f"elapsed    {self.elapsed_s * 1000.0:.1f} ms",
            f"throughput {self.ops_per_s:.1f} ops/s",
        ]
        for op in sorted(self.latency_ms):
            q = self.latency_ms[op]
            lines.append(
                f"{op:<10} p50 {_fmt(q['p50'])}  p99 {_fmt(q['p99'])}  "
                f"mean {_fmt(q['mean'])}  (n={q['count']})"
            )
        if self.served_by:
            share = ", ".join(
                f"s{s}:{c}" for s, c in sorted(self.served_by.items())
            )
            lines.append(f"served by  {share}")
        return "\n".join(lines)


def _fmt(x: Optional[float]) -> str:
    return "-" if x is None else f"{x:.2f}ms"


class LoadGenerator:
    """Drive a YCSB workload against ``cluster`` (see module docstring)."""

    def __init__(
        self,
        cluster: ServiceCluster,
        *,
        workload: str = "a",
        ops_per_site: int = 50,
        zipf_s: float = 0.99,
        value_size: int = 0,
        seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        client_kwargs: Optional[Dict[str, Any]] = None,
        sessions: int = 1,
    ) -> None:
        self.cluster = cluster
        #: concurrent client sessions per site.  1 is the paper's
        #: one-application-process-per-site model; the service bench
        #: raises it so the servers see overlapping requests (which is
        #: what gives frame batching something to coalesce).  Each
        #: session stays closed-loop; a site's script is stride-split
        #: across its sessions, keeping the key mix per session.
        self.sessions = max(1, int(sessions))
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.scripts: List[List[Operation]] = ycsb(
            workload,
            cluster.n,
            cluster.variables,
            ops_per_site=ops_per_site,
            zipf_s=zipf_s,
            seed=seed,
            value_size=value_size,
        )
        self.client_kwargs = dict(client_kwargs or {})
        self.errors = 0
        #: operations finished so far, across all driver sessions — lets a
        #: chaos harness trigger failures mid-run rather than on a timer
        self.completed = 0
        self.total_ops = sum(len(s) for s in self.scripts)

    async def run(self) -> LoadReport:
        loop = asyncio.get_running_loop()
        drivers: List[Tuple[Any, SiteId, List[Operation]]] = []
        clients: List[Any] = []
        for site, script in enumerate(self.scripts):
            k = min(self.sessions, len(script)) or 1
            for i in range(k):
                client = self.cluster.client(
                    home=site, metrics=self.metrics, **self.client_kwargs
                )
                clients.append(client)
                drivers.append((client, site, script[i::k]))
        started = loop.time()
        try:
            done = await asyncio.gather(
                *(
                    self._drive(client, site, chunk)
                    for client, site, chunk in drivers
                )
            )
        finally:
            for client in clients:
                await client.close()
        elapsed = loop.time() - started
        served: Dict[SiteId, int] = {}
        failovers = 0
        for client in clients:
            failovers += client.failovers
            for s, c in client.served_by.items():
                served[s] = served.get(s, 0) + c
        latency: Dict[str, Dict[str, Optional[float]]] = {}
        for op in ("put", "get"):
            hist = self.metrics.histogram("service_latency_ms", op=op)
            latency[op] = {
                "p50": hist.quantile(0.5),
                "p99": hist.quantile(0.99),
                "mean": hist.mean if hist.count else None,
                "count": hist.count,
            }
        return LoadReport(
            ops=sum(done),
            errors=self.errors,
            elapsed_s=elapsed,
            failovers=failovers,
            latency_ms=latency,
            served_by=served,
        )

    async def _drive(self, client: Any, site: SiteId, script: List[Operation]) -> int:
        loop = asyncio.get_running_loop()
        completed = 0
        for op in script:
            kind = "put" if op.kind.name == "WRITE" else "get"
            t0 = loop.time()
            try:
                if kind == "put":
                    await client.put(op.var, op.value)
                else:
                    await client.get(op.var)
            except ServiceUnavailableError:
                self.errors += 1
                self.completed += 1
                self.metrics.counter("service_request_errors_total", op=kind).inc()
                continue
            self.metrics.histogram("service_latency_ms", op=kind).observe(
                (loop.time() - t0) * 1000.0
            )
            completed += 1
            self.completed += 1
        return completed


__all__ = ["LoadGenerator", "LoadReport"]
