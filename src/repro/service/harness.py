"""Assemble a whole service cluster in one process.

:class:`ServiceCluster` builds ``n`` :class:`~repro.service.server.
SiteServer` instances — one protocol state machine each, placement from
:mod:`repro.store.placement` — over a shared transport.  Over the
:class:`~repro.service.transport.LoopbackTransport` this gives a
socket-free cluster for unit tests, the ``repro-kv smoke`` gate, and
sanitizer shadow-checking: with ``sanitize=True`` a single
:class:`~repro.verify.sanitizer.CausalSanitizer` oracle observes every
site, so one process can assert causal safety across the whole cluster
while requests flow through the real server/client/wire code paths.

The harness also owns the chaos hooks (``kill_site`` severs a site the
way a crash would — listener gone, every established connection dropped,
in-flight frames lost) and :meth:`quiesce`, which waits for replication
to settle (all peer-link queues drained and parked updates applied at
the surviving sites) so tests can assert convergence without sleeps.

With a ``data_dir`` the cluster becomes durable: every site gets its own
``site-N`` subdirectory (WAL + snapshots, see
:mod:`repro.service.durability`), and :meth:`restart_site` brings a
killed site back *in place* — a fresh :class:`SiteServer` over the same
data directory recovers from its snapshot + WAL suffix, rejoins under a
bumped incarnation epoch, and catches up on whatever it missed through
gossip anti-entropy (``gossip_interval``).
"""

from __future__ import annotations

import asyncio
import os
from typing import Any, Dict, List, Optional

from repro.core.base import ProtocolConfig, protocol_class
from repro.errors import ServiceError
from repro.service.client import KVClient
from repro.service.server import SiteServer
from repro.service.transport import LoopbackTransport, Transport
from repro.store.placement import Placement, default_variables, make_placement
from repro.types import SiteId


class ServiceCluster:
    """One co-hosted service cluster (loopback by default)."""

    def __init__(
        self,
        n_sites: int,
        n_variables: int,
        protocol: str = "opt-track",
        *,
        replication_factor: Optional[int] = None,
        placement: Optional[Placement] = None,
        placement_strategy: str = "round-robin",
        strict_remote_reads: bool = False,
        sanitize: bool = False,
        transport: Optional[Transport] = None,
        addresses: Optional[Dict[SiteId, str]] = None,
        recorder: Any = None,
        metrics: Any = None,
        read_timeout: float = 2.0,
        seed: int = 0,
        protocol_kwargs: Optional[Dict[str, Any]] = None,
        codec: str = "delta",
        server_cls: Optional[type] = None,
        flight_dir: Optional[str] = None,
        data_dir: Optional[str] = None,
        fsync: str = "group",
        gossip_interval: Optional[float] = None,
        snapshot_interval: Optional[float] = None,
    ) -> None:
        self.n = n_sites
        self.seed = seed
        #: wire profile preference handed to every server and client:
        #: ``"delta"`` negotiates the full WIRE_VERSION 4 metadata-lean
        #: profile, ``"binary"`` pins the WIRE_VERSION 3 batched
        #: profile, ``"json"`` pins the whole cluster to the v2
        #: per-frame profile (the bench baseline and the mixed-version
        #: tests use the pinned profiles)
        self.codec = codec
        cls = protocol_class(protocol)
        p = replication_factor
        if p is None or cls.full_replication_only:
            p = n_sites
        if placement is None:
            placement = make_placement(
                placement_strategy, n_sites, n_variables, p, seed=seed
            )
        self.placement: Placement = placement
        self.variables = default_variables(n_variables)
        self.transport: Transport = transport or LoopbackTransport(metrics=metrics)
        self.addresses: Dict[SiteId, str] = addresses or {
            s: f"site-{s}" for s in range(n_sites)
        }
        self.metrics = metrics
        self.recorder = recorder
        self.sanitizer = None
        if sanitize:
            from repro.verify.sanitizer import CausalSanitizer

            self.sanitizer = CausalSanitizer(n_sites)
        kwargs = dict(protocol_kwargs or {})
        #: the server class to instantiate — tests substitute seeded
        #: mutants here (e.g. the schedule explorer's torn-drain server)
        #: to prove the sanitizer catches a specific interleaving bug
        self.server_cls: type = server_cls or SiteServer
        #: where site flight recorders dump post-mortems (None = ring
        #: only).  Passed through only when set, so substituted server
        #: classes with narrower signatures keep working.
        self.flight_dir = flight_dir
        #: durability root: each site persists under ``<data_dir>/site-N``
        #: (None = memory-only cluster, exactly the pre-durability shape)
        self.data_dir = data_dir
        self.fsync = fsync
        self.gossip_interval = gossip_interval
        self.snapshot_interval = snapshot_interval
        # remembered so restart_site can rebuild a site from scratch
        self._protocol_cls = cls
        self._protocol_kwargs = kwargs
        self._strict_remote_reads = strict_remote_reads
        self.read_timeout = read_timeout
        self._t0: Optional[float] = None
        self.servers: List[SiteServer] = []
        for site in range(n_sites):
            self.servers.append(self._make_server(site))
        self._started = False

    def _make_server(self, site: SiteId) -> SiteServer:
        """Build one site's server (used at construction and by
        :meth:`restart_site`).  Optional features travel as kwargs only
        when enabled, so substituted server classes with narrower
        signatures keep working."""
        proto = self._protocol_cls(
            ProtocolConfig(
                n=self.n,
                site=site,
                replicas_of=self.placement,
                strict_remote_reads=self._strict_remote_reads,
            ),
            **self._protocol_kwargs,
        )
        if self.recorder is not None:
            proto.obs = self.recorder
        extra_kwargs: Dict[str, Any] = {}
        if self.flight_dir is not None:
            extra_kwargs["flight_dir"] = self.flight_dir
        if self.data_dir is not None:
            extra_kwargs["data_dir"] = os.path.join(
                self.data_dir, f"site-{int(site)}"
            )
            extra_kwargs["fsync"] = self.fsync
            if self.snapshot_interval is not None:
                extra_kwargs["snapshot_interval"] = self.snapshot_interval
        if self.gossip_interval is not None:
            extra_kwargs["gossip_interval"] = self.gossip_interval
        return self.server_cls(
            proto,
            self.addresses,
            self.transport,
            sanitizer=self.sanitizer,
            recorder=self.recorder,
            metrics=self.metrics,
            read_timeout=self.read_timeout,
            seed=self.seed + site,
            codec=self.codec,
            **extra_kwargs,
        )

    # ------------------------------------------------------------------
    async def start(self) -> "ServiceCluster":
        loop = asyncio.get_running_loop()
        t0 = self._t0 = loop.time()
        if self.recorder is not None:
            # one shared origin: spans from different sites stay ordered
            self.recorder.bind_clock(lambda: (loop.time() - t0) * 1000.0)
        for server in self.servers:
            server.set_clock_origin(t0)
            await server.start()
        self._started = True
        return self

    async def stop(self) -> None:
        for server in self.servers:
            await server.stop()
        if self.recorder is not None and self.metrics is not None:
            # stamp the transport-level byte totals into the trace
            # header so ``repro-sim trace`` can report wire cost
            counters = self.metrics.snapshot()["counters"]
            sent = sum(
                v for k, v in counters.items()
                if k.startswith("wire_bytes_sent_total")
            )
            received = sum(
                v for k, v in counters.items()
                if k.startswith("wire_bytes_received_total")
            )
            if sent or received:
                self.recorder.meta["wire_bytes"] = {
                    "sent": sent, "received": received
                }
        transport = self.transport
        if isinstance(transport, LoopbackTransport):
            await transport.close()
        self._started = False

    async def __aenter__(self) -> "ServiceCluster":
        return await self.start()

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    def client(self, home: SiteId = 0, **kwargs: Any) -> KVClient:
        kwargs.setdefault("metrics", self.metrics)
        kwargs.setdefault("seed", self.seed + 1000 + home)
        kwargs.setdefault("codec", self.codec)
        return KVClient(
            self.addresses, self.placement, self.transport, home=home, **kwargs
        )

    def kill_site(self, site: SiteId) -> None:
        """Crash ``site``: sever its connections and stop its server.

        Loopback only — over TCP a crash is inflicted on the process (or
        via the ``kill`` chaos frame), not through the transport."""
        transport = self.transport
        if not isinstance(transport, LoopbackTransport):
            raise ServiceError("kill_site needs the loopback transport")
        # the crash post-mortem: dump the site's flight ring before its
        # state is torn down (a no-op unless ``flight_dir`` is set)
        self.servers[site].flight_dump("chaos-kill-site")
        transport.kill(self.addresses[site])
        asyncio.ensure_future(self.servers[site].stop())

    async def restart_site(self, site: SiteId) -> SiteServer:
        """Bring a killed site back in place from its data directory.

        A fresh :class:`SiteServer` opens the same WAL (which bumps the
        incarnation epoch durably), recovers snapshot + suffix
        synchronously in its constructor, and starts listening on the
        site's old address.  Everything the site missed while dead — and
        anything it lost that peers still owe it — converges through
        gossip anti-entropy; call :meth:`quiesce` to wait for it."""
        if self.data_dir is None:
            raise ServiceError("restart_site needs a durable cluster (data_dir)")
        old = self.servers[site]
        # stop() is idempotent; awaiting it here makes sure the dead
        # incarnation's WAL handle is closed before the new one opens
        await old.stop()
        server = self._make_server(site)
        if self._t0 is not None:
            server.set_clock_origin(self._t0)
        if self.servers[site] is not old:  # re-read: a concurrent restart
            raise ServiceError(f"site {site} was restarted concurrently")
        self.servers[site] = server
        await server.start()
        return server

    @property
    def live_sites(self) -> List[SiteId]:
        return [s.site for s in self.servers if not s.stopped]

    # ------------------------------------------------------------------
    async def quiesce(self, timeout: float = 5.0) -> None:
        """Wait until replication settles at every *live* site: all peer
        links between live sites drained and no parked update can apply.
        Raises ``TimeoutError`` if the cluster does not settle.

        Soundness: a link's backlog is **ack-gated** — a repl frame
        counts until the receiving site has *processed* it (acks follow
        the apply/park, see :class:`~repro.service.server.PeerLink`), so
        an update can never be invisible to both the backlog and the
        receiver at once.  Gossip control frames are covered by the same
        invariant: a ``sys.digest``/``sys.range`` counts in the backlog
        from enqueue until the peer's ``sys.ctrl.ok`` — which the peer
        sends only *after* enqueueing the repair re-ships on its own
        links, where they count as ordinary repl backlog — so an
        anti-entropy round in flight can never look settled.  Settlement
        must additionally hold on two consecutive polls, covering any
        one-tick scheduling window."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout

        def settled() -> bool:
            live = set(self.live_sites)
            for server in self.servers:
                if server.site not in live:
                    continue
                for dest, link in server._links.items():
                    if dest in live and link.backlog:
                        return False
                if any(server.protocol.can_apply(m) for m in server._parked):
                    return False
            return True

        stable = 0
        while stable < 2:
            stable = stable + 1 if settled() else 0
            if stable >= 2:
                return
            if loop.time() > deadline:
                raise TimeoutError("service cluster failed to quiesce")
            await asyncio.sleep(0.005)


__all__ = ["ServiceCluster"]
