"""Service throughput bench: the ``BENCH_service.json`` ledger.

Measures the networked KV service end to end under the three wire
profiles — the v2 baseline (JSON codec, per-frame flush, one ack per
apply), the WIRE_VERSION 3 profile (binary codec, coalesced batches,
cumulative acks), and the WIRE_VERSION 4 metadata-lean profile (chained
``repl.delta`` frames, negotiated id interning, ack-driven GC) — over
both transports:

* **loopback** — deterministic in-process transport; every frame still
  round-trips the active codec, so this isolates encode/decode plus the
  per-frame vs batched server machinery with zero kernel noise;
* **tcp** — real sockets on 127.0.0.1, adding syscall/flush behaviour —
  the coalesced single-``drain`` write path only exists here.

Each cell drives the closed-loop YCSB generator (several sessions per
site, so servers see overlapping requests — what gives batching
something to coalesce) and reports ops/s plus p50/p99 service latency
from the shared :class:`~repro.obs.registry.MetricsRegistry` histogram
pipeline.  Cells run ``repeats`` times and keep the best run, the usual
noise floor for throughput benches.

Every cell additionally reports **bytes per operation** from the
transport-level ``wire_bytes_sent_total`` counters, and a dedicated
**metadata-bound cell** (:data:`METADATA_BOUND`: tiny values, eight
sites, sparse placement, a long YCSB-A run — the regime where causal
metadata, not payload, dominates the wire) isolates what the v4
profile is for.

The **guardrails**: on the reference loopback run the binary profile
must beat the JSON profile by at least :data:`SPEEDUP_FLOOR` in ops/s,
and on the metadata-bound cell the delta profile must spend at most
:data:`BYTES_RATIO_CEILING` of the binary profile's bytes per op.
:func:`write_report` (and so ``make service-bench`` / CI) raises when
either fails — a codec, batching, or delta regression fails the build
rather than silently eroding the win the ledger documents.

A codec microbench (encoded frame sizes and per-frame encode/decode
times for a representative ``repl`` frame and ack, plus the chained
delta encoding of a representative consecutive-frame pair) rides
along, tying the end-to-end numbers back to the paper's
message-overhead argument.

The **durability cell** prices the write-ahead log (docs/durability.md):
the reference loopback/binary config run WAL-off and WAL-on in paired
back-to-back attempts (same seed; pairing cancels machine drift that
two independently-best cells would sample separately), judged on the
best paired ratio by :data:`DURABILITY_FLOOR` — logging every
transition may cost at most a quarter of the throughput.  The receive
path logs raw wire bytes (:meth:`SiteWal.append_raw`), which is what
keeps the ratio comfortably above the floor.  A recovery microbench
rides along: kill a
site, let it fall ``gap`` writes behind, and time the restart
(constructor-time WAL replay) and reconvergence separately, so the
ledger documents that catch-up cost scales with the gap, not the
history.
"""

from __future__ import annotations

import asyncio
import gc
import tempfile
import time
from typing import Any, Dict, List, Optional

from repro.core.log import DepLog
from repro.core.messages import OptTrackMeta, UpdateMessage
from repro.obs.export import parse_metric_key
from repro.obs.registry import MetricsRegistry
from repro.service import wire
from repro.service.harness import ServiceCluster
from repro.service.loadgen import LoadGenerator
from repro.service.transport import LoopbackTransport, TcpTransport
from repro.types import WriteId

#: the CI guardrail: binary ops/s must be at least this multiple of
#: JSON ops/s on the reference loopback cell
SPEEDUP_FLOOR = 1.25

#: the CI guardrail for the v4 profile: on the metadata-bound loopback
#: cell the delta profile's bytes/op must be at most this fraction of
#: the binary (v3) profile's
BYTES_RATIO_CEILING = 0.60

#: the CI guardrail for the durability subsystem: WAL-on ops/s must be
#: at least this fraction of the WAL-off reference loopback cell —
#: appends are write+flush on the hot path (fsync is batched off-loop),
#: so logging every transition may cost at most a quarter of the
#: throughput
DURABILITY_FLOOR = 0.75

#: revived-site gaps (writes issued while the site was dead) the
#: recovery microbench times; fast mode uses the first two
RECOVERY_GAPS = (0, 50, 200)

#: the reference run every ledger row shares: full replication over four
#: sites (each write fans out to three peer links — the wire path is a
#: large share of the work), YCSB-A at twelve closed-loop sessions per
#: site (overlap makes batches), 4 KB values (YCSB-scale records; tiny
#: test values understate every codec's share of an op)
REFERENCE: Dict[str, Any] = {
    "protocol": "opt-track",
    "sites": 4,
    "variables": 12,
    "replication_factor": 4,
    "workload": "a",
    "ops_per_site": 250,
    "sessions": 12,
    "value_size": 4096,
    "seed": 7,
}

#: the metadata-bound cell: tiny values over a wide, sparsely
#: replicated cluster, run long — under sparse placement the v3
#: dependency logs grow with run length (piggybacked knowledge starves)
#: while the v4 ack-driven GC holds them to the in-flight window, and
#: the read half of YCSB-A ships a stored log in every fetch reply.
#: Metadata, not payload, is then what the wire carries, which is the
#: regime the v4 profile is for.  Loopback only: the cell measures
#: bytes on the wire, which transports agree on exactly.
METADATA_BOUND: Dict[str, Any] = {
    "protocol": "opt-track",
    "sites": 8,
    "variables": 24,
    "replication_factor": 3,
    "workload": "a",
    "ops_per_site": 900,
    "sessions": 8,
    "value_size": 0,
    "seed": 11,
}

#: cell repeats (best-of); the fast path used by tests runs once
REPEATS = 3

_CODECS = ("json", "binary", "delta")


async def _free_tcp_addresses(n: int) -> Dict[int, str]:
    """Reserve ``n`` distinct 127.0.0.1 ports via ephemeral listeners.

    Uses ``asyncio.start_server`` (never the ``socket`` module — the
    service layer is lint-banned from blocking I/O imports); the tiny
    close-then-rebind race is acceptable for a bench harness.
    """
    servers = []
    addresses: Dict[int, str] = {}
    try:
        for site in range(n):
            server = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            servers.append(server)
            port = server.sockets[0].getsockname()[1]
            addresses[site] = f"127.0.0.1:{port}"
    finally:
        for server in servers:
            server.close()
            await server.wait_closed()
    return addresses


async def bench_cell(
    transport: str,
    codec: str,
    config: Optional[Dict[str, Any]] = None,
    repeats: int = REPEATS,
) -> Dict[str, Any]:
    """One matrix cell: best-of-``repeats`` load runs, as a JSON row."""
    cfg = dict(REFERENCE)
    cfg.update(config or {})
    best: Optional[Dict[str, Any]] = None
    for attempt in range(max(1, repeats)):
        metrics = MetricsRegistry()
        kwargs: Dict[str, Any] = {}
        state_dir: Optional[tempfile.TemporaryDirectory] = None
        if cfg.get("durable"):
            # the WAL-on variant: a throwaway data dir per attempt, the
            # default group-fsync policy, no snapshot/gossip tasks — the
            # cell prices the append path alone
            state_dir = tempfile.TemporaryDirectory(prefix="repro-bench-wal-")
            kwargs["data_dir"] = state_dir.name
            kwargs["fsync"] = cfg.get("fsync", "group")
        if transport == "tcp":
            kwargs["transport"] = TcpTransport(metrics=metrics)
            kwargs["addresses"] = await _free_tcp_addresses(cfg["sites"])
        elif transport == "loopback":
            if cfg.get("link_delay"):
                # the WAN-latency knob: a delayed loopback grows the
                # unacked window, and with it the dependency logs —
                # the metadata-bound cell runs here
                kwargs["transport"] = LoopbackTransport(
                    metrics=metrics, delay=cfg["link_delay"]
                )
        else:
            raise ValueError(f"unknown bench transport {transport!r}")
        async with ServiceCluster(
            cfg["sites"],
            cfg["variables"],
            cfg["protocol"],
            replication_factor=cfg["replication_factor"],
            metrics=metrics,
            seed=cfg["seed"] + attempt,
            codec=codec,
            **kwargs,
        ) as cluster:
            gen = LoadGenerator(
                cluster,
                workload=cfg["workload"],
                ops_per_site=cfg["ops_per_site"],
                sessions=cfg["sessions"],
                value_size=cfg["value_size"],
                seed=cfg["seed"] + attempt,
                metrics=metrics,
            )
            # a GC pause landing inside one cell skews the ratio; collect
            # up front and keep the collector out of the measured window
            gc.collect()
            gc.disable()
            try:
                report = await gen.run()
            finally:
                gc.enable()
            await cluster.quiesce()
        if state_dir is not None:
            state_dir.cleanup()
        row = report.as_dict()
        row["transport"] = transport
        row["codec"] = codec
        if cfg.get("durable"):
            row["wal"] = "on"
        # transport-level byte totals over the whole run including the
        # quiesce tail, so replication traffic is fully accounted
        counters = metrics.snapshot()["counters"]
        sent = sum(
            v for k, v in counters.items()
            if k.startswith("wire_bytes_sent_total")
        )
        row["wire_bytes_sent"] = sent
        row["wire_bytes_per_op"] = sent / row["ops"] if row["ops"] else 0.0
        # sent bytes attributed per frame kind (sender-side split of the
        # same traffic) — what lets the v4 metadata-lean ledger show the
        # savings land on repl frames, not acks or fetches
        by_kind: Dict[str, int] = {}
        for key, value in counters.items():
            if key.startswith("wire_frame_bytes_total"):
                name, labels = parse_metric_key(key)
                kind = labels.get("kind", "?")
                by_kind[kind] = by_kind.get(kind, 0) + value
        row["bytes_by_kind"] = dict(sorted(by_kind.items()))
        if report.errors:
            raise RuntimeError(
                f"bench cell {transport}/{codec} surfaced {report.errors} "
                "request errors; the ledger only records clean runs"
            )
        if best is None or row["ops_per_s"] > best["ops_per_s"]:
            best = row
    assert best is not None
    return best


def _reference_repl_messages() -> List[UpdateMessage]:
    """Two consecutive updates from one sender for the codec microbench:
    Opt-Track metadata whose dependency logs overlap heavily — the shape
    a peer link actually carries, and what the delta chain exploits."""
    return [
        UpdateMessage(
            var="x7",
            value="value-7",
            write_id=WriteId(1, 41),
            sender=1,
            dest=2,
            meta=OptTrackMeta(
                clock=41,
                replicas_mask=0b110,
                log=DepLog({(0, 17): 6, (1, 40): 5, (2, 9): 3}),
            ),
        ),
        UpdateMessage(
            var="x7",
            value="value-8",
            write_id=WriteId(1, 42),
            sender=1,
            dest=2,
            meta=OptTrackMeta(
                clock=42,
                replicas_mask=0b110,
                log=DepLog({(0, 17): 6, (1, 41): 5, (2, 9): 3}),
            ),
        ),
    ]


def _reference_repl_frame() -> Dict[str, Any]:
    return wire.encode_update(_reference_repl_messages()[0], 41)


def bench_codecs(iterations: int = 20000) -> Dict[str, Any]:
    """Per-frame encode/decode timings and sizes for both codecs, plus
    the chained ``repl.delta`` size for the consecutive-frame pair."""
    frames = {
        "repl": _reference_repl_frame(),
        "repl.ack": wire.make_frame("repl.ack", a=41),
    }
    out: Dict[str, Any] = {"iterations": iterations}
    for name, frame in frames.items():
        row: Dict[str, Any] = {}
        for codec_name in ("json", "binary"):
            codec = wire.CODECS[codec_name]
            encoded = codec.encode(frame)
            body = encoded[4:]
            assert wire.decode_body(body) == frame
            t0 = time.perf_counter()
            for _ in range(iterations):
                codec.encode(frame)
            t1 = time.perf_counter()
            for _ in range(iterations):
                wire.decode_body(body)
            t2 = time.perf_counter()
            row[codec_name] = {
                "body_bytes": len(body),
                "encode_us": (t1 - t0) / iterations * 1e6,
                "decode_us": (t2 - t1) / iterations * 1e6,
            }
        row["size_ratio"] = row["json"]["body_bytes"] / row["binary"]["body_bytes"]
        out[name] = row
    # the v4 chain on the same pair: second frame as repl.delta with an
    # interned var id, against the second frame encoded full
    first, second = _reference_repl_messages()
    itab = wire.InternTable(["x7"])
    enc = wire.DeltaEncoder(itab)
    enc.encode_update(first, 41)
    delta_frame = enc.encode_update(second, 42)
    full_bytes = len(wire.BINARY_CODEC.encode(wire.encode_update(second, 42))) - 4
    delta_bytes = len(wire.BINARY_CODEC.encode(delta_frame)) - 4
    out["repl.delta"] = {
        "frame_type": delta_frame["t"],
        "full_body_bytes": full_bytes,
        "delta_body_bytes": delta_bytes,
        "size_ratio": full_bytes / delta_bytes if delta_bytes else 0.0,
    }
    return out


async def bench_recovery(
    gaps=RECOVERY_GAPS, preload: int = 40
) -> List[Dict[str, Any]]:
    """Time kill → restart → reconverge against the revived site's gap.

    One durable 3-site loopback cluster per gap: ``preload`` writes land
    everywhere, the victim is killed, ``gap`` more writes are issued
    while it is dead, and the restart is timed in two parts — the
    synchronous constructor recovery (snapshot + WAL-suffix replay,
    covering the preload) and the reconvergence tail (link redelivery +
    gossip closing the gap).  All writes go to one site-0/victim shared
    variable from one site-0 session, so convergence is exactly "the
    victim's site-0 watermark reaches preload + gap".
    """
    rows: List[Dict[str, Any]] = []
    loop = asyncio.get_running_loop()
    for gap in gaps:
        with tempfile.TemporaryDirectory(prefix="repro-bench-rec-") as root:
            async with ServiceCluster(
                3, 6, "opt-track", replication_factor=2, seed=23,
                codec="binary", data_dir=root, gossip_interval=0.05,
            ) as cluster:
                victim = cluster.n - 1
                var = next(
                    v for v in cluster.variables
                    if 0 in cluster.placement[v]
                    and victim in cluster.placement[v]
                )
                client = cluster.client(0)
                for i in range(preload):
                    await client.put(var, f"pre-{i}")
                await cluster.quiesce()
                cluster.kill_site(victim)
                for i in range(gap):
                    await client.put(var, f"gap-{i}")
                await client.close()
                await cluster.quiesce()
                t0 = loop.time()
                revived = await cluster.restart_site(victim)
                t_restarted = loop.time()
                target = preload + gap
                deadline = t_restarted + 30.0
                while (
                    revived._origin_applied.get(0, 0) < target
                    and loop.time() < deadline
                ):
                    await asyncio.sleep(0.002)
                t_converged = loop.time()
                converged = revived._origin_applied.get(0, 0) >= target
                await cluster.quiesce(timeout=10.0)
            if not converged:
                raise RuntimeError(
                    f"recovery bench: revived site never converged at "
                    f"gap={gap} (watermark "
                    f"{revived._origin_applied.get(0, 0)}/{target})"
                )
            rows.append(
                {
                    "gap": gap,
                    "preload": preload,
                    "replayed_records": revived.wal_replayed,
                    "restart_ms": (t_restarted - t0) * 1e3,
                    "converge_ms": (t_converged - t_restarted) * 1e3,
                }
            )
    return rows


async def _run_matrix(
    fast: bool, config: Optional[Dict[str, Any]]
) -> Dict[str, Any]:
    cfg = dict(REFERENCE)
    if fast:
        cfg.update(ops_per_site=40, sessions=3)
    cfg.update(config or {})
    repeats = 1 if fast else REPEATS
    cells: Dict[str, Dict[str, Any]] = {}
    for transport in ("loopback", "tcp"):
        per_codec: Dict[str, Any] = {}
        for codec in _CODECS:
            per_codec[codec] = await bench_cell(
                transport, codec, config=cfg, repeats=repeats
            )
        per_codec["speedup"] = (
            per_codec["binary"]["ops_per_s"] / per_codec["json"]["ops_per_s"]
        )
        per_codec["delta_vs_binary"] = (
            per_codec["delta"]["ops_per_s"] / per_codec["binary"]["ops_per_s"]
        )
        cells[transport] = per_codec
    # the metadata-bound cell: loopback only, all three profiles, judged
    # on bytes/op (the v4 guardrail) rather than throughput
    meta_cfg = dict(METADATA_BOUND)
    if fast:
        meta_cfg.update(ops_per_site=30, sessions=3)
    metadata: Dict[str, Any] = {"config": meta_cfg}
    for codec in _CODECS:
        metadata[codec] = await bench_cell(
            "loopback", codec, config=meta_cfg, repeats=repeats
        )
    bytes_ratio = (
        metadata["delta"]["wire_bytes_per_op"]
        / metadata["binary"]["wire_bytes_per_op"]
    )
    metadata["bytes_ratio"] = bytes_ratio
    speedup = cells["loopback"]["speedup"]
    # the durability cell: the loopback/binary reference config re-run
    # WAL-off and WAL-on in *paired* attempts — off then on back to
    # back, same seed — judged on the best paired ratio.  Pairing is
    # the variance control: throughput on a shared machine drifts more
    # than the WAL costs, and two independently-best cells sample
    # different moments; adjacent runs sample the same one, so their
    # ratio isolates the WAL's own cost.
    pairs: List[Dict[str, Any]] = []
    best_pair = None
    for attempt in range(repeats):
        pair_cfg = dict(cfg)
        pair_cfg["seed"] = cfg["seed"] + 101 * attempt
        off = await bench_cell("loopback", "binary", config=pair_cfg, repeats=1)
        on = await bench_cell(
            "loopback", "binary",
            config={**pair_cfg, "durable": True}, repeats=1,
        )
        ratio = on["ops_per_s"] / off["ops_per_s"]
        pairs.append(
            {
                "off_ops_per_s": off["ops_per_s"],
                "on_ops_per_s": on["ops_per_s"],
                "wal_ratio": ratio,
            }
        )
        if best_pair is None or ratio > best_pair[0]:
            best_pair = (ratio, off, on)
    wal_ratio = best_pair[0]
    durability: Dict[str, Any] = {
        "off": best_pair[1],
        "on": best_pair[2],
        "pairs": pairs,
        "wal_ratio": wal_ratio,
        "recovery": await bench_recovery(
            gaps=RECOVERY_GAPS[:2] if fast else RECOVERY_GAPS,
            preload=10 if fast else 40,
        ),
    }
    return {
        "config": cfg,
        "repeats": repeats,
        "wire_versions": {
            "json": wire.JSON_WIRE_VERSION,
            "binary": wire.BATCH_WIRE_VERSION,
            "delta": wire.DELTA_WIRE_VERSION,
        },
        "cells": cells,
        "metadata_cell": metadata,
        "durability_cell": durability,
        "codec_micro": bench_codecs(iterations=2000 if fast else 20000),
        "guardrail": {
            "transport": "loopback",
            "speedup_floor": SPEEDUP_FLOOR,
            "speedup": speedup,
            "bytes_ratio_ceiling": BYTES_RATIO_CEILING,
            "bytes_ratio": bytes_ratio,
            "durability_floor": DURABILITY_FLOOR,
            "wal_ratio": wal_ratio,
            # fast mode shrinks the run below the point where batches
            # form, so it exercises the machinery without judging the
            # throughput rail; the bytes rail is deterministic enough
            # to hold in fast mode too, but is judged only on full runs
            "enforced": not fast,
            "ok": fast
            or (
                speedup >= SPEEDUP_FLOOR
                and bytes_ratio <= BYTES_RATIO_CEILING
                and wal_ratio >= DURABILITY_FLOOR
            ),
        },
    }


def bench_service(
    fast: bool = False, config: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Run the full transport × codec matrix; returns the ledger dict."""
    return asyncio.run(_run_matrix(fast, config))


def write_report(
    path: str, fast: bool = False, config: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Write ``BENCH_service.json``.  Raises ``RuntimeError`` when the
    binary profile fails the :data:`SPEEDUP_FLOOR` guardrail or the
    delta profile fails the :data:`BYTES_RATIO_CEILING` guardrail — the
    ``make service-bench`` / CI gate."""
    import json

    report = bench_service(fast=fast, config=config)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    rail = report["guardrail"]
    if not rail["ok"]:
        problems = []
        if rail["speedup"] < rail["speedup_floor"]:
            problems.append(
                f"binary is only {rail['speedup']:.2f}x the JSON baseline "
                f"on the reference loopback bench (floor "
                f"{rail['speedup_floor']:.2f}x)"
            )
        if rail["bytes_ratio"] > rail["bytes_ratio_ceiling"]:
            problems.append(
                f"delta spends {rail['bytes_ratio']:.2f}x the binary "
                f"profile's bytes/op on the metadata-bound cell (ceiling "
                f"{rail['bytes_ratio_ceiling']:.2f}x)"
            )
        if rail["wal_ratio"] < rail["durability_floor"]:
            problems.append(
                f"the WAL costs too much: durable ops/s is only "
                f"{rail['wal_ratio']:.2f}x the memory-only cell (floor "
                f"{rail['durability_floor']:.2f}x)"
            )
        raise RuntimeError(
            "service bench guardrail failed: " + "; ".join(problems)
        )
    return report


__all__ = [
    "SPEEDUP_FLOOR",
    "BYTES_RATIO_CEILING",
    "DURABILITY_FLOOR",
    "RECOVERY_GAPS",
    "REFERENCE",
    "METADATA_BOUND",
    "bench_cell",
    "bench_codecs",
    "bench_recovery",
    "bench_service",
    "write_report",
]
