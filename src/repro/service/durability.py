"""Per-site durability: write-ahead log + stable-timestamp snapshots.

This module is the *audited seam* for file I/O in ``repro.service`` — the
``durability-io`` lint rule bans raw ``open``/``os.fsync`` everywhere else
in the package, so every blocking filesystem call the live service makes
is reviewable in one place.

Design (docs/durability.md has the full walkthrough):

* **WAL records** are ordinary wire frames: a record on disk is
  ``crc32(payload) . payload`` where ``payload`` is the v3 binary codec's
  length-prefixed encoding of the frame (:data:`repro.service.wire.BINARY_CODEC`).
  The ``wal.*`` frame kinds live in the same append-only type registry as
  the connection frames but never cross a socket — they are file-format
  constants.
* **Torn tails vs corruption**: a record whose bytes run out before the
  declared length is a *torn tail* — the expected artifact of a crash mid
  ``write(2)`` — and is silently truncated, but only at the physical end
  of the **last** segment.  A record that is complete but fails its CRC
  (or any trailing bytes on a non-final segment) is *corruption* and
  recovery refuses to proceed: :class:`WalCorruptionError` names the file
  and byte offset so the operator can decide what to salvage.
* **Segments and retirement**: the log is a sequence of numbered segment
  files ``wal.NNNNNN``.  A snapshot atomically covers a *segment prefix*:
  the writer rotates to a fresh segment (synchronous, single-writer), the
  snapshot is committed off-loop (tmp + fsync + rename), and only then
  are the covered segments unlinked.  The committed snapshot frame
  records the highest covered segment index, so a crash anywhere in that
  window is safe: either the old snapshot is still current and *all*
  segments replay, or the new one is current and the covered segments are
  ignored (and lazily deleted) even if the unlink never ran.  Retirement
  can therefore never drop an un-snapshotted record.
* **Group fsync**: appends ``write``+``flush`` synchronously — an
  in-process kill (the chaos ``kill`` frame, a cancelled task) loses
  nothing because the bytes are in the OS page cache before the append
  call returns.  ``fsync`` — which only matters for whole-machine power
  loss — is batched by a background task through
  ``loop.run_in_executor``, so the single-writer event loop never blocks
  on the disk.  The torn-tail rule above covers whatever the batching
  window exposes.

The stable-timestamp rationale — why a snapshot keyed by the per-origin
apply watermarks is sufficient — follows *Global Stabilization for
Causally Consistent Partial Replication* (Xiang & Vaidya); see
docs/durability.md.
"""

from __future__ import annotations

import asyncio
import os
import zlib
from typing import Any, BinaryIO, Dict, Iterator, List, Optional, Tuple

from repro.errors import ServiceError, WireError
from repro.service import wire

__all__ = [
    "WalCorruptionError",
    "SiteWal",
    "encode_record",
    "encode_raw_record",
    "decode_records",
    "FSYNC_MODES",
]

#: supported ``fsync`` policies: ``"group"`` batches fsyncs off-loop (the
#: default), ``"none"`` never fsyncs (bench mode — an in-process kill is
#: still lossless, only power loss is not)
FSYNC_MODES = ("group", "none")

_CRC_BYTES = 4
_SNAP_NAME = "snap.bin"
_INCARNATION_NAME = "incarnation"
_SEGMENT_PREFIX = "wal."

#: delay between an append and the batched fsync that covers it; every
#: append inside one window shares a single disk flush
DEFAULT_FSYNC_INTERVAL = 0.002


class WalCorruptionError(ServiceError):
    """A complete WAL record failed its integrity check.

    Raised only for *corruption* (bad CRC, trailing garbage on a
    non-final segment, an unreadable snapshot) — never for the torn tail
    a crash legitimately leaves, which recovery truncates silently.
    """


def encode_record(frame: Dict[str, Any]) -> bytes:
    """Encode one frame as a CRC-guarded WAL record."""
    payload = wire.BINARY_CODEC.encode(frame)
    return zlib.crc32(payload).to_bytes(_CRC_BYTES, "big") + payload


def encode_raw_record(body: bytes) -> bytes:
    """Wrap an already-encoded frame body (the bytes after a frame's
    length prefix, exactly as they crossed the wire) as a CRC-guarded
    WAL record.  :func:`decode_records` sniffs the codec per record, so
    raw bodies of either codec interleave freely with
    :func:`encode_record` output in one segment."""
    payload = len(body).to_bytes(4, "big") + body
    return zlib.crc32(payload).to_bytes(_CRC_BYTES, "big") + payload


def decode_records(
    data: bytes, *, source: str = "<wal>", allow_torn_tail: bool = True
) -> Tuple[List[Dict[str, Any]], int]:
    """Decode a segment's bytes into frames.

    Returns ``(frames, valid_length)`` where ``valid_length`` is the byte
    offset of the first torn record (== ``len(data)`` when the segment is
    clean).  A complete-but-corrupt record raises
    :class:`WalCorruptionError`; so does a torn tail when
    ``allow_torn_tail`` is false (non-final segments must be whole).
    """
    frames: List[Dict[str, Any]] = []
    off = 0
    n = len(data)
    while off < n:
        if off + _CRC_BYTES + 4 > n:
            break  # torn: not even a crc + length prefix
        crc = int.from_bytes(data[off : off + _CRC_BYTES], "big")
        try:
            body_len = wire.frame_length(
                data[off + _CRC_BYTES : off + _CRC_BYTES + 4]
            )
        except WireError:
            # a partially-written length prefix is indistinguishable from
            # any other torn bytes; the trailing-bytes check below still
            # rejects it on a non-final segment
            break
        end = off + _CRC_BYTES + 4 + body_len
        if end > n:
            break  # torn: body runs past EOF
        payload = data[off + _CRC_BYTES : end]
        if zlib.crc32(payload) != crc:
            raise WalCorruptionError(
                f"WAL corruption in {source} at byte {off}: record CRC "
                f"mismatch (expected {crc:#010x}, got "
                f"{zlib.crc32(payload):#010x}); refusing to recover past it"
            )
        try:
            frames.append(wire.decode_body(payload[4:]))
        except WireError as exc:
            raise WalCorruptionError(
                f"WAL corruption in {source} at byte {off}: record passed "
                f"its CRC but failed to decode: {exc}"
            ) from None
        off = end
    if off != n and not allow_torn_tail:
        raise WalCorruptionError(
            f"WAL corruption in {source} at byte {off}: {n - off} trailing "
            f"byte(s) on a non-final segment (torn tails are only legal at "
            f"the end of the log)"
        )
    return frames, off


def _fsync_path(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` durably: tmp + fsync + rename + dir fsync."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        f.write(data)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    _fsync_path(os.path.dirname(path) or ".")


def _segment_index(name: str) -> Optional[int]:
    if not name.startswith(_SEGMENT_PREFIX):
        return None
    try:
        return int(name[len(_SEGMENT_PREFIX) :])
    except ValueError:
        return None


def _segment_name(index: int) -> str:
    return f"{_SEGMENT_PREFIX}{index:06d}"


def _read_dir(
    data_dir: str,
) -> Tuple[int, Optional[Dict[str, Any]], List[Tuple[int, str]]]:
    """Read ``(incarnation, snapshot_frame, sorted segment list)``."""
    incarnation = 0
    inc_path = os.path.join(data_dir, _INCARNATION_NAME)
    if os.path.exists(inc_path):
        with open(inc_path, "r", encoding="utf-8") as f:
            text = f.read().strip()
        try:
            incarnation = int(text)
        except ValueError:
            raise WalCorruptionError(
                f"unreadable incarnation file {inc_path}: {text!r}"
            ) from None
    snapshot: Optional[Dict[str, Any]] = None
    snap_path = os.path.join(data_dir, _SNAP_NAME)
    if os.path.exists(snap_path):
        with open(snap_path, "rb") as f:
            data = f.read()
        frames, valid = decode_records(data, source=snap_path)
        if valid != len(data) or len(frames) != 1:
            raise WalCorruptionError(
                f"unreadable snapshot {snap_path}: expected exactly one "
                f"whole record, got {len(frames)} record(s) and "
                f"{len(data) - valid} trailing byte(s)"
            )
        snapshot = frames[0]
    segments = sorted(
        (idx, name)
        for name in os.listdir(data_dir)
        if (idx := _segment_index(name)) is not None
    )
    return incarnation, snapshot, segments


class SiteWal:
    """One site's durable state: incarnation + snapshot + WAL segments.

    Constructing a ``SiteWal`` *recovers*: it bumps the incarnation file
    (durably, before anything else — a recovered site must never reuse a
    dead epoch), loads the committed snapshot if any, replays every
    uncovered segment (truncating a torn tail on the last one), and opens
    a fresh segment for new appends.  The loaded state is left on
    :attr:`snapshot` and :attr:`records` for the server to consume.
    """

    def __init__(
        self,
        data_dir: str,
        *,
        fsync: str = "group",
        fsync_interval: float = DEFAULT_FSYNC_INTERVAL,
    ) -> None:
        if fsync not in FSYNC_MODES:
            raise ServiceError(
                f"unknown fsync mode {fsync!r} (choose from {FSYNC_MODES})"
            )
        self.data_dir = data_dir
        self.fsync_mode = fsync
        self.fsync_interval = fsync_interval
        os.makedirs(data_dir, exist_ok=True)

        prev, snapshot, segments = _read_dir(data_dir)
        #: strictly monotone across restarts; the server adopts it as its
        #: link epoch so peers reset their dedup state for the new life
        self.incarnation = prev + 1
        _atomic_write(
            os.path.join(data_dir, _INCARNATION_NAME),
            f"{self.incarnation}\n".encode("utf-8"),
        )

        #: the committed ``snap`` frame, or None on first boot
        self.snapshot = snapshot
        covered = int(snapshot.get("seg", 0)) if snapshot else 0
        #: uncovered WAL frames in append order, ready for replay
        self.records: List[Dict[str, Any]] = []
        live = [(idx, name) for idx, name in segments if idx > covered]
        for pos, (idx, name) in enumerate(live):
            path = os.path.join(data_dir, name)
            with open(path, "rb") as f:
                data = f.read()
            last = pos == len(live) - 1
            frames, valid = decode_records(
                data, source=path, allow_torn_tail=last
            )
            if valid != len(data):
                # torn tail on the final segment: truncate to the last
                # whole record so the next recovery sees a clean log
                with open(path, "r+b") as f:
                    f.truncate(valid)
                    f.flush()
                    os.fsync(f.fileno())
            self.records.extend(frames)
        # segments the committed snapshot covers are dead even if the
        # crash preempted their unlink — finish the retirement lazily
        for idx, name in segments:
            if idx <= covered:
                os.unlink(os.path.join(data_dir, name))

        self._seg_index = (segments[-1][0] if segments else 0) + 1
        self._f: BinaryIO = open(
            os.path.join(data_dir, _segment_name(self._seg_index)), "ab"
        )
        self._dirty = asyncio.Event()
        self._closed = False
        self._fsync_task: Optional[asyncio.Task] = None
        #: counters for the server's metrics plane
        self.records_appended = 0
        self.bytes_appended = 0
        self.raw_appends = 0
        self.fsyncs = 0
        self.snapshots = 0

    # -- appends --------------------------------------------------------

    def append(self, frame: Dict[str, Any]) -> None:
        """Append one frame record (write + flush; fsync is batched).

        Synchronous by design: called between awaits on the single-writer
        loop, so the record hits the OS page cache before the protocol
        mutation it logs becomes visible to any other task.
        """
        if self._closed:
            return
        self._write_record(encode_record(frame))

    def append_raw(self, body: bytes) -> None:
        """Append one record from already-encoded wire bytes.

        The fast path for replicated updates: the receiver logs the
        frame body exactly as it came off the wire, skipping the
        re-encode that dominates :meth:`append`'s CPU cost.  Callers
        must pass only *self-contained* bodies (plain ``repl`` /
        ``repl.t`` with an un-interned variable name) — a WAL record
        has to decode with no connection state, exactly like
        :meth:`append` output.  On replay such a record surfaces with
        its on-wire type; the server treats a plain repl kind in the
        log as ``wal.repl``.
        """
        if self._closed:
            return
        self._write_record(encode_raw_record(body))
        self.raw_appends += 1

    def _write_record(self, rec: bytes) -> None:
        self._f.write(rec)
        self._f.flush()
        self.records_appended += 1
        self.bytes_appended += len(rec)
        if self.fsync_mode == "group":
            self._dirty.set()

    def start(self) -> None:
        """Start the group-fsync task (call from inside the event loop)."""
        if self.fsync_mode == "group" and self._fsync_task is None:
            self._fsync_task = asyncio.ensure_future(self._fsync_loop())

    async def _fsync_loop(self) -> None:
        loop = asyncio.get_event_loop()
        while not self._closed:
            await self._dirty.wait()
            # group: every append landing in this window shares one flush
            await asyncio.sleep(self.fsync_interval)
            self._dirty.clear()
            f = self._f
            if self._closed or f.closed:
                return
            await loop.run_in_executor(None, os.fsync, f.fileno())
            self.fsyncs += 1

    async def sync(self) -> None:
        """Force one immediate off-loop fsync of the open segment."""
        if self._closed or self._f.closed:
            return
        loop = asyncio.get_event_loop()
        await loop.run_in_executor(None, os.fsync, self._f.fileno())
        self.fsyncs += 1

    # -- snapshots ------------------------------------------------------

    def begin_snapshot(self) -> int:
        """Rotate to a fresh segment; returns the covered segment index.

        Synchronous: the caller captures protocol state and calls this in
        the same no-await block, so the rotation point and the captured
        state agree exactly.
        """
        covered = self._seg_index
        self._f.close()
        self._seg_index += 1
        self._f = open(
            os.path.join(self.data_dir, _segment_name(self._seg_index)), "ab"
        )
        return covered

    async def commit_snapshot(self, frame: Dict[str, Any], covered: int) -> None:
        """Durably commit a snapshot, then retire the segments it covers.

        Runs off-loop.  Ordering is the whole story: the snapshot (with
        its ``seg`` watermark) is fsynced and renamed into place *before*
        any covered segment is unlinked, so a crash at any point leaves
        either the old snapshot + all segments or the new snapshot (which
        ignores the covered ones).
        """
        frame = dict(frame)
        frame["seg"] = covered
        data = encode_record(frame)
        loop = asyncio.get_event_loop()
        snap_path = os.path.join(self.data_dir, _SNAP_NAME)
        await loop.run_in_executor(None, _atomic_write, snap_path, data)

        def _retire() -> None:
            for name in os.listdir(self.data_dir):
                idx = _segment_index(name)
                if idx is not None and idx <= covered:
                    os.unlink(os.path.join(self.data_dir, name))

        await loop.run_in_executor(None, _retire)
        self.snapshots += 1

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Flush, final-fsync, and close the open segment."""
        if self._closed:
            return
        self._closed = True
        if self._fsync_task is not None:
            self._fsync_task.cancel()
            self._fsync_task = None
        if not self._f.closed:
            self._f.flush()
            if self.fsync_mode == "group":
                os.fsync(self._f.fileno())
                self.fsyncs += 1
            self._f.close()

    # -- offline inspection ---------------------------------------------

    @staticmethod
    def inspect(data_dir: str) -> Dict[str, Any]:
        """Read-only view of a data dir (no incarnation bump, no locks).

        Used by ``repro-kv recover`` to answer "what would a restart
        replay?" without perturbing the site's durable state.
        """
        incarnation, snapshot, segments = _read_dir(data_dir)
        covered = int(snapshot.get("seg", 0)) if snapshot else 0
        records: List[Dict[str, Any]] = []
        live = [(idx, name) for idx, name in segments if idx > covered]
        for pos, (idx, name) in enumerate(live):
            path = os.path.join(data_dir, name)
            with open(path, "rb") as f:
                data = f.read()
            frames, _ = decode_records(
                data, source=path, allow_torn_tail=pos == len(live) - 1
            )
            records.extend(frames)
        return {
            "incarnation": incarnation,
            "snapshot": snapshot,
            "segments": [name for _, name in segments],
            "covered_segment": covered,
            "records": records,
        }
