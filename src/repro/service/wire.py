"""Wire format of the networked KV service.

Frames are **length-prefixed**: a 4-byte big-endian unsigned length
followed by one frame body in one of two codecs:

* the **JSON codec** (:class:`JsonCodec`, frame schema version 2) — a
  UTF-8 JSON object, byte-compatible with WIRE_VERSION 2 peers.  This is
  the codec every connection starts in and the permanent fallback for
  older peers;
* the **binary codec** (:class:`BinaryCodec`, the WIRE_VERSION 3 wire) —
  a struct-packed header (magic byte, frame schema version, frame-type
  tag) followed by the frame's fields in a compact msgpack-style
  encoding (single-byte type tags, varlength ints, flat ``struct``-packed
  integer vectors for dependency logs and clock rows).  A JSON body
  always starts with ``{`` (0x7B) and a binary body always starts with
  :data:`BINARY_MAGIC` (0xB3, not a valid UTF-8 lead byte), so a
  WIRE_VERSION 3 receiver decodes either codec per frame with no
  ambiguity (:func:`decode_body` sniffs the first byte).

Codec choice is **negotiated, never assumed**: every handshake frame
(``link.hello``/``link.ok`` between peers, ``hello``/``hello.ok`` from
clients) travels as JSON and carries the sender's capability version
``cv``.  Only when both ends announced ``cv >= 3`` does a connection
switch to the binary codec — a WIRE_VERSION 2 peer never sees a binary
byte.  Capability 3 (:data:`BATCH_WIRE_VERSION`) additionally buys the
*batched* wire profile (coalesced frame flushes and cumulative batched
acks, see :mod:`repro.service.server`); a v2 peer keeps the per-frame
profile.  Capability 4 (:data:`DELTA_WIRE_VERSION`, the current
:data:`WIRE_VERSION`) makes the replication stream *metadata-lean* on
top of the binary codec:

* **per-link delta encoding** — consecutive repl frames on one peer-link
  connection share almost all of their dependency-log state, so the
  sender chains each frame's metadata as a diff against the previous
  frame it sent on that connection (``repl.delta``, encoded by
  :class:`DeltaEncoder` / decoded by :class:`DeltaDecoder`).  The first
  repl frame after every handshake is always full — a reconnect or epoch
  change resets both ends' baselines — and the receiver only ever
  decodes the contiguous ``ls == seen + 1`` frame, so its baseline (the
  previous frame it processed) is the one the sender chained against by
  construction.  A diff that would not be smaller than the full
  metadata falls back to a full ``repl`` frame; receivers accept both
  at any capability.
* **negotiated id interning** — variable names repeat on every frame, so
  the handshake *receiver* answers with an intern table (``itab``: a
  list of names; position = id) built from its placement map.  Senders
  may then put the small int in any ``var`` field; since ``VarId`` is a
  string, an int on the wire is unambiguously an interned id, resolved
  against the table its receiver itself advertised — race-free for the
  same reason the codec sniffing is.

Every frame carries the frame schema version (``"v"``, currently
:data:`JSON_WIRE_VERSION` — the field layout is unchanged from v2, which
is what makes the JSON fallback interoperable) and a frame type
(``"t"``).  A peer that receives a frame with an unknown version must
reject the connection rather than guess — the schema version is bumped
on any incompatible change (field renames, semantic changes), never for
additive optional fields such as ``cv``.

Frame types
-----------
Client-facing request/response::

    hello    {v, t:"hello", cv}                  -> hello.ok {site, cv}
             optional codec negotiation (one round trip per pooled
             connection).  ``cv`` is the client's capability version;
             the server answers with the minimum of both sides and the
             connection switches to the binary codec when that is >= 3.
             A v2 server answers ``err bad-frame`` and the client stays
             on JSON — the fallback path.
    put      {v, t:"put", var, value}            -> put.ok {w} | err
    get      {v, t:"get", var}                   -> get.ok {value, w, by} | err
    ping     {v, t:"ping"}                       -> ping.ok {site}
    kill     {v, t:"kill"}                       -> kill.ok {}   (chaos)

Server-to-server (peer links)::

    link.hello  {v, t:"link.hello", src, epoch, cv} -> link.ok {ack, cv}
             opens every peer-link connection.  ``epoch`` identifies the
             sender *incarnation*: the receiver keys its repl dedup
             state by (src, epoch) and resets it when a new epoch
             connects, so a restarted site's fresh sequence numbers are
             not mistaken for duplicates.  ``ack`` is the receiver's
             cumulative per-link high-water mark; the sender retires
             everything up to it and resends the rest.
    repl     one UpdateMessage (REPLICATE); ``ls`` is a contiguous
             per-link sequence number.  The receiver processes only
             ``ls == seen + 1`` (drops duplicates, refuses gaps without
             acking) and answers ``repl.ack {a}`` — a cumulative ack
             sent only *after* the update is applied or parked.  The
             sender retires a frame on ack, never on transport send
             success alone: at-least-once delivery, exactly-once apply.
    repl.ackp  the v4 ack: ``{a, ap}`` where ``ap`` is the gap between
             ``a`` and the highest contiguous *applied* (not merely
             parked) ``ls`` — ``a - ap`` is the sender's ack-driven
             dependency-log GC watermark (``note_remote_apply``).  The
             gap is almost always 0, so it packs into one byte where an
             absolute watermark would repeat a full-width sequence.
    repl.delta  same fields as ``repl`` but ``meta`` holds a diff against
             the metadata of the previous frame sent on this connection
             (kinds ``otd``/``crpd``/``mcd``); only sent on ``cv >= 4``
             links, never as the first repl frame of a connection.  On
             v4 links both ``repl`` and ``repl.delta`` may carry ``w:
             None`` when the write id is derivable as ``WriteId(src,
             meta.clock)`` (it always is for opt-track and CRP writes).
    fetch    one FetchRequest, answered by fetch.ok (correlated by ``fid``)

Live observability (the ``sx`` capability, see :data:`STATS_CAPABILITY`)::

    sys.stats   {v, t:"sys.stats"}  -> sys.stats.ok {site, epoch, ...}
             one internally consistent snapshot of the answering site:
             per-link watermarks and backlogs, parked-update depths,
             dep-log size, wire bytes by frame kind, store size, and the
             site's metrics-registry snapshot.  Only sent to peers that
             advertised ``sx`` in their hello; anyone else answers
             ``err bad-frame``, exactly like a pre-stats server would.
    repl.t / repl.delta.t   the repl frames with the origin's issue time
             ``it`` (ms on the origin's clock) appended — what feeds the
             receiver's per-origin visibility-latency histograms.  Only
             sent on links whose peer advertised ``sx``; field-for-field
             identical to their base kinds otherwise (strip_issue).

``err`` frames carry a machine-readable ``code``; codes in
:data:`RETRIABLE` mark failures the client may retry (elsewhere).

Protocol metadata (matrix clocks, dependency logs, apply snapshots) is
piggybacked through the tagged codec in :func:`encode_meta` /
:func:`decode_meta`, mirroring the in-memory types of
:mod:`repro.core.messages` exactly — the decoded objects are the same
classes the protocols consume, so a protocol instance cannot tell a wire
peer from an in-process one.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.clocks import MatrixClock, VectorClock
from repro.core.log import DepLog
from repro.core.messages import (
    CrpMeta,
    FetchReply,
    FetchRequest,
    OptTrackMeta,
    UpdateMessage,
)
from repro.errors import WireError
from repro.types import WriteId

#: the connection capability this side speaks (see module docstring).
#: v2: acknowledged peer links — repl requires the link.hello handshake,
#: contiguous ``ls``, and repl.ack-driven retirement; a v1 peer would
#: wedge replication silently, so the versions must not interoperate.
#: v3: negotiated binary codec + batched wire profile (coalesced frame
#: flushes, cumulative batched acks).  Frame *fields* are unchanged from
#: v2 — a v3 peer falls back to the v2 JSON profile via the handshake.
#: v4: metadata-lean replication — chained ``repl.delta`` frames,
#: ``ap`` applied watermarks on acks, and negotiated id interning.
#: Everything v4 adds is per-connection negotiated state, so v3 and v2
#: peers keep their exact profiles (the agreed capability is the min of
#: both sides' announcements, feature-gated per threshold below).
WIRE_VERSION = 4

#: capability threshold for the binary codec + batched link profile
BATCH_WIRE_VERSION = 3

#: capability threshold for delta-encoded repl metadata + id interning
DELTA_WIRE_VERSION = 4

#: the frame schema version stamped on every frame dict.  Still 2: v3
#: adds a codec and a batching profile, not a field change, so the JSON
#: rendering of every frame is exactly what a v2 peer expects.
JSON_WIRE_VERSION = 2

#: oldest frame schema this side still decodes
MIN_WIRE_VERSION = 2

#: first body byte of a binary-codec frame.  0xB3 is not a valid UTF-8
#: lead byte and a JSON object body always starts with ``{`` (0x7B), so
#: one byte of lookahead identifies the codec unambiguously.
BINARY_MAGIC = 0xB3

#: hard cap on one frame's encoded body; protects both sides from a
#: corrupt or hostile length prefix
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")

#: ``err`` codes the client may retry (possibly against another replica)
RETRIABLE = ("read-timeout", "unavailable", "shutting-down")

#: the live-observability capability, advertised as the additive ``sx``
#: field on ``hello``/``link.hello`` and echoed on the ok replies — the
#: same zero-round-trip negotiation pattern as the codec capability
#: ``cv`` but orthogonal to it (stats negotiate on any agreed wire
#: version, JSON included).  A peer that advertised ``sx >= 1`` accepts
#: ``sys.stats`` requests and understands the issue-time-stamped
#: ``repl.t``/``repl.delta.t`` replication frames; peers that did not
#: advertise it are never sent any of them.  Additive optional fields
#: never bump the frame schema version (see module docstring).
STATS_CAPABILITY = 1

#: the gossip/anti-entropy capability, advertised as the additive ``gx``
#: field on ``link.hello`` and echoed on ``link.ok`` — same zero-round-trip
#: pattern as ``sx`` and orthogonal to both ``sx`` and the codec capability
#: ``cv``.  A peer that advertised ``gx >= 1`` accepts ``sys.digest`` /
#: ``sys.range`` anti-entropy frames and replies with ``sys.ctrl.ok``;
#: peers that did not advertise it (pre-durability builds) are never sent
#: any of them, so a mixed cluster degrades to plain exactly-once
#: replication with no gossip catch-up for the old peer.
GOSSIP_CAPABILITY = 1


def _check_version(version: Any) -> None:
    if not isinstance(version, int) or not (
        MIN_WIRE_VERSION <= version <= WIRE_VERSION
    ):
        raise WireError(
            f"unsupported wire version {version!r} (this side speaks "
            f"{MIN_WIRE_VERSION}..{WIRE_VERSION}); upgrade the older peer"
        )


# ----------------------------------------------------------------------
# codecs
# ----------------------------------------------------------------------
class JsonCodec:
    """The WIRE_VERSION 2 fallback codec: one UTF-8 JSON object per frame."""

    name = "json"
    #: highest connection capability this codec's profile provides
    version = JSON_WIRE_VERSION

    def encode(self, frame: Dict[str, Any]) -> bytes:
        """Serialize one frame dict to its length-prefixed wire bytes."""
        body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
        if len(body) > MAX_FRAME_BYTES:
            raise WireError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
        return _LEN.pack(len(body)) + body

    def decode_body(self, body: bytes) -> Dict[str, Any]:
        try:
            frame = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"undecodable frame body: {exc}") from None
        if not isinstance(frame, dict):
            raise WireError(f"frame must be a JSON object, got {type(frame).__name__}")
        _check_version(frame.get("v"))
        if not isinstance(frame.get("t"), str):
            raise WireError("frame missing its type field 't'")
        return frame


class BinaryCodec:
    """The WIRE_VERSION 3 codec: struct header + compact field packing.

    Body layout (after the outer 4-byte length prefix)::

        B  magic       BINARY_MAGIC (0xB3)
        B  version     frame schema version (the frame's ``v`` field)
        B  type tag    index into the frame-type registry; 0 = unknown
                       type, the type string follows as a packed value
        .. fields      the remaining frame fields as one packed map
                       (msgpack-style value encoding, see ``_pack_into``)

    Decoding reconstructs the exact frame dict the JSON codec would have
    produced — both codecs are interchangeable per frame, which is what
    the codec round-trip property tests assert.

    ``compact=True`` (the :data:`BINARY_CODEC_V4` instance) additionally
    *emits* the v4 two-byte int tag (``_T_INT16``) for values the frozen
    v3 encoder spends five bytes on — link sequence numbers, write
    clocks, acks.  Every decoder of this release accepts the tag
    regardless of negotiation, but a true v3 peer would not, so the
    compact instance is only ever installed on a ``cv >= 4`` connection
    (:func:`codec_for`); the plain instance keeps the v3 byte stream
    frozen.
    """

    name = "binary"
    version = BATCH_WIRE_VERSION

    def __init__(self, compact: bool = False) -> None:
        self.compact = compact
        if compact:
            self.version = DELTA_WIRE_VERSION

    def encode(self, frame: Dict[str, Any]) -> bytes:
        out = bytearray(4)  # length prefix patched in below
        try:
            frame_type = frame["t"]
            version = frame["v"]
        except KeyError as exc:
            raise WireError(f"frame missing required field {exc}") from None
        compact = self.compact
        tag = _FRAME_TAGS.get(frame_type, 0)
        schema = _FRAME_SCHEMAS.get(frame_type)
        values: Optional[list] = None
        if schema is not None and len(frame) == len(schema) + 2:
            try:
                values = [frame[k] for k in schema]
            except KeyError:
                values = None
        try:
            if values is not None:
                out += _HDR.pack(BINARY_MAGIC, version, tag | _SCHEMA_BIT)
                for val in values:
                    _pack_into(out, val, compact)
            else:
                out += _HDR.pack(BINARY_MAGIC, version, tag)
                if tag == 0:
                    _pack_into(out, frame_type, compact)
                _pack_len(out, _T_MAP, len(frame) - 2)
                for key, val in frame.items():
                    if key == "v" or key == "t":
                        continue
                    if type(key) is str:
                        _pack_str(out, key)
                    else:
                        _pack_into(out, key, compact)
                    _pack_into(out, val, compact)
        except struct.error as exc:
            raise WireError(f"unencodable frame header: {exc}") from None
        body_len = len(out) - 4
        if body_len > MAX_FRAME_BYTES:
            raise WireError(f"frame of {body_len} bytes exceeds {MAX_FRAME_BYTES}")
        out[:4] = _LEN.pack(body_len)
        return bytes(out)

    def decode_body(self, body: bytes) -> Dict[str, Any]:
        try:
            magic, version, tag = _HDR.unpack_from(body, 0)
        except struct.error as exc:
            raise WireError(f"truncated binary frame header: {exc}") from None
        if magic != BINARY_MAGIC:
            raise WireError(f"binary frame with bad magic 0x{magic:02x}")
        _check_version(version)
        pos = _HDR.size
        schema_packed = tag & _SCHEMA_BIT
        tag &= _SCHEMA_BIT - 1
        try:
            if tag == 0 and not schema_packed:
                frame_type, pos = _unpack_from(body, pos)
            else:
                frame_type = _FRAME_TYPES[tag]
        except IndexError:
            raise WireError(f"unknown binary frame type tag {tag}") from None
        if not isinstance(frame_type, str):
            raise WireError("binary frame missing its type tag")
        frame: Dict[str, Any] = {"v": version, "t": frame_type}
        try:
            if schema_packed:
                schema = _FRAME_SCHEMAS.get(frame_type)
                if schema is None:
                    raise WireError(
                        f"{frame_type!r} frames have no schema layout"
                    )
                for key in schema:
                    first = body[pos]
                    if first >= _T_FIXINT:
                        frame[key] = first - _T_FIXINT
                        pos += 1
                    else:
                        frame[key], pos = _unpack_from(body, pos)
            else:
                fields, pos = _unpack_from(body, pos)
                if not isinstance(fields, dict):
                    raise WireError("binary frame fields must decode to a map")
                frame.update(fields)
        except (IndexError, struct.error, UnicodeDecodeError) as exc:
            raise WireError(f"undecodable binary frame body: {exc}") from None
        if pos != len(body):
            raise WireError(
                f"binary frame has {len(body) - pos} trailing bytes"
            )
        return frame


#: the codec singletons; connections reference these, never copies.
#: BINARY_CODEC_V4 shares the v3 decoder and frame layouts but emits
#: the compact v4 int tags — see :class:`BinaryCodec`.
JSON_CODEC = JsonCodec()
BINARY_CODEC = BinaryCodec()
BINARY_CODEC_V4 = BinaryCodec(compact=True)

CODECS = {JSON_CODEC.name: JSON_CODEC, BINARY_CODEC.name: BINARY_CODEC}


def codec_for(agreed: int) -> Any:
    """The send codec a connection installs for an agreed capability:
    the compact-int binary encoder at ``cv >= 4``, the byte-frozen v3
    binary encoder at 3, JSON below."""
    if agreed >= DELTA_WIRE_VERSION:
        return BINARY_CODEC_V4
    if agreed >= BATCH_WIRE_VERSION:
        return BINARY_CODEC
    return JSON_CODEC

#: wire profiles selectable through the server/client ``codec=`` knob:
#: profile name -> the capability version announced in handshakes.  The
#: byte codec is implied (binary for ``cv >= BATCH_WIRE_VERSION``); the
#: "delta" and "binary" profiles share it and differ only in whether the
#: v4 features (repl.delta chaining, interning, ap watermarks) are
#: offered.  "binary" therefore pins a peer to the exact v3 profile —
#: the fallback matrix tests and the bench ledger rely on that.
PROFILE_CAPS: Dict[str, int] = {
    "json": JSON_WIRE_VERSION,
    "binary": BATCH_WIRE_VERSION,
    "delta": DELTA_WIRE_VERSION,
}


def profile_caps(profile: str) -> int:
    """Capability version for a ``codec=`` profile name (raises
    :class:`WireError` on unknown names, listing the valid ones)."""
    try:
        return PROFILE_CAPS[profile]
    except KeyError:
        raise WireError(
            f"unknown wire profile {profile!r} "
            f"(choose from {sorted(PROFILE_CAPS)})"
        ) from None

_HDR = struct.Struct(">BBB")

#: frame-type registry for the binary header tag.  Append-only: tags are
#: wire constants, so a type must never be removed or renumbered.
_FRAME_TYPES: Tuple[str, ...] = (
    "",  # tag 0: unknown type, spelled out in the body
    "repl",
    "repl.ack",
    "fetch",
    "fetch.ok",
    "fetch.err",
    "link.hello",
    "link.ok",
    "hello",
    "hello.ok",
    "put",
    "put.ok",
    "get",
    "get.ok",
    "ping",
    "ping.ok",
    "kill",
    "kill.ok",
    "err",
    "repl.delta",
    "repl.ackp",
    "sys.stats",
    "sys.stats.ok",
    "repl.t",
    "repl.delta.t",
    # durability subsystem (WAL records are binary-codec frames too, so
    # they live in the same append-only registry; ``wal.*`` kinds never
    # cross a connection — they are file-format constants)
    "wal.put",
    "wal.repl",
    "wal.hello",
    "wal.read",
    "wal.rfetch",
    "snap",
    # gossip anti-entropy (the gx capability)
    "sys.digest",
    "sys.range",
    "sys.ctrl.ok",
)
_FRAME_TAGS: Dict[str, int] = {t: i for i, t in enumerate(_FRAME_TYPES) if i}

#: header tag bit marking a schema-packed (positional) body
_SCHEMA_BIT = 0x80

#: positional field layouts for the hot frame types.  A frame whose key
#: set is exactly ``{"v", "t"} | schema`` packs its field values in this
#: order with no key strings or map header — the "struct-packed frame
#: header" fast path.  Like the type registry these are wire constants:
#: a layout must never be reordered; adding a field to a frame type
#: means dropping its schema entry (the generic map layout takes over,
#: which every decoder also accepts).
_FRAME_SCHEMAS: Dict[str, Tuple[str, ...]] = {
    "repl": ("var", "value", "w", "src", "dst", "meta", "ls"),
    "repl.delta": ("var", "value", "w", "src", "dst", "meta", "ls"),
    # issue-time-stamped repl variants (the sx stats capability): the
    # same layout with the origin's issue timestamp appended — spelled
    # as new types rather than new fields so the original layouts stay
    # byte-frozen for peers that never negotiated the stamp
    "repl.t": ("var", "value", "w", "src", "dst", "meta", "ls", "it"),
    "repl.delta.t": ("var", "value", "w", "src", "dst", "meta", "ls", "it"),
    "repl.ack": ("a",),
    # the v4 ack: ``ap`` is the gap ``a - applied`` (usually 0, one byte)
    "repl.ackp": ("a", "ap"),
    "put": ("var", "value"),
    "put.ok": ("w",),
    "get": ("var",),
    "get.ok": ("value", "w", "by"),
    "fetch": ("var", "rq", "sv", "fid", "deps"),
    "fetch.ok": (
        "var", "value", "w", "sv", "rq", "fid", "meta", "applied",
    ),
    # WAL record layouts (file-format constants, same append-only rules).
    # ``snap`` stays map-shaped: snapshots are rare and their field set
    # is expected to grow.
    "wal.put": ("var", "value", "w"),
    "wal.repl": ("var", "value", "w", "src", "dst", "meta", "ls"),
    "wal.hello": ("src", "epoch"),
    "wal.read": ("var",),
    "wal.rfetch": ("var", "value", "w", "sv", "meta", "applied"),
    # gossip: ``d`` is the flat ``[origin, watermark, ...]`` apply-vector
    # digest (the ivec idea applied to per-origin watermarks)
    "sys.digest": ("src", "d"),
    "sys.range": ("origin", "rq", "lo", "hi"),
    "sys.ctrl.ok": ("n",),
}

#: positional layouts for the tagged metadata maps of
#: :func:`encode_meta` — a dict whose ``"k"`` names a registered kind
#: and whose key set matches packs as ``_T_SCHEMA`` + id + values, again
#: dropping every key string.  Append-only, same rules as above.
_MAP_SCHEMAS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("ot", ("c", "rm", "log")),
    ("crp", ("c", "log")),
    ("dl", ("e",)),
    ("mc", ("m",)),
    ("vc", ("v",)),
    ("arr", ("v",)),
    ("ivec", ("v",)),
    ("pairs", ("v",)),
    # v4 delta metadata kinds (diffs against a per-connection baseline,
    # see encode_meta_delta).  otd is index-coded: "c" is the clock
    # advance over the baseline, "x"/"u" address baseline records by
    # their sorted position, "n" carries new records as full triples
    ("otd", ("c", "rm", "x", "u", "n")),
    ("crpd", ("c", "x", "ch")),
    ("mcd", ("n", "ch")),
    # v4 compact full encodings (see encode_meta / encode_fetch_reply)
    ("ot4", ("c", "rm", "log", "e")),
    ("ivr", ("v",)),
    ("dl4", ("c", "log", "e")),
)
_MAP_SCHEMA_IDS: Dict[str, Tuple[int, Tuple[str, ...]]] = {
    kind: (i, keys) for i, (kind, keys) in enumerate(_MAP_SCHEMAS)
}


# ----------------------------------------------------------------------
# compact value packing (msgpack-style; used by BinaryCodec)
# ----------------------------------------------------------------------
# One-byte type tags.  Small non-negative ints ride *in* the tag byte
# (0x80 | n, msgpack's fixint idea); lists of plain ints take a flat
# encoding with a per-list element width packed by a single ``struct``
# call — dependency-log entries, clock rows, and apply-snapshot vectors
# all hit that path, which is where the compact codec beats per-element
# dispatch on both bytes and time.
_T_NONE, _T_FALSE, _T_TRUE = 0x00, 0x01, 0x02
_T_INT8, _T_INT32, _T_INT64, _T_BIGINT = 0x10, 0x11, 0x12, 0x13
#: two-byte int (v4): emitted only by the compact encoder instance,
#: accepted by every decoder of this release (append-only tag registry)
_T_INT16 = 0x14
_T_FLOAT = 0x20
_T_STR, _T_BYTES, _T_LIST, _T_MAP = 0x30, 0x38, 0x40, 0x50
#: flat int vector; the byte after the count is the element width (1/2/4/8)
_T_INTLIST = 0x48
#: schema-packed map: a _MAP_SCHEMAS id byte, then the values in layout
#: order — no key strings on the wire
_T_SCHEMA = 0x60
#: 0x80..0xFF: the value n - 0x80 itself (0..127), no payload
_T_FIXINT = 0x80

_BH = struct.Struct(">Bh")
_BI = struct.Struct(">Bi")
_BQ = struct.Struct(">Bq")
_BD = struct.Struct(">Bd")
_I16 = struct.Struct(">h")
_I32 = struct.Struct(">i")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1

#: element widths for _T_INTLIST: (byte width, struct letter, signed bound)
_INTLIST_WIDTHS = (
    (1, "b", 1 << 7),
    (2, "h", 1 << 15),
    (4, "i", 1 << 31),
    (8, "q", 1 << 63),
)

#: short strings recur constantly on the wire (frame field names,
#: variable names, metadata kind tags) — cache their packed form.  The
#: cache is bounded and only admits short strings, so a hostile stream
#: of unique keys cannot grow it without bound.
_STR_CACHE: Dict[str, bytes] = {}
_STR_CACHE_MAX = 4096


def _pack_len(out: bytearray, tag: int, n: int) -> None:
    """Tagged length prefix: ``tag`` + u8, or ``tag`` + 0xFF + u32."""
    if n < 0xFF:
        out.append(tag)
        out.append(n)
    else:
        out.append(tag)
        out.append(0xFF)
        out += n.to_bytes(4, "big")


def _unpack_len(body: bytes, pos: int) -> Tuple[int, int]:
    n = body[pos]
    pos += 1
    if n == 0xFF:
        n = int.from_bytes(body[pos : pos + 4], "big")
        pos += 4
    return n, pos


def _pack_str(out: bytearray, value: str) -> None:
    cached = _STR_CACHE.get(value)
    if cached is not None:
        out += cached
        return
    raw = value.encode("utf-8")
    n = len(raw)
    if n < 0xFF:
        packed = bytes((_T_STR, n)) + raw
        if n <= 40 and len(_STR_CACHE) < _STR_CACHE_MAX:
            _STR_CACHE[value] = packed
        out += packed
    else:
        _pack_len(out, _T_STR, n)
        out += raw


def _pack_into(out: bytearray, value: Any, compact: bool = False) -> None:
    kind = type(value)
    if kind is str:
        _pack_str(out, value)
    elif kind is int:
        if 0 <= value <= 127:
            out.append(_T_FIXINT | value)
        elif -128 <= value < 0:
            out.append(_T_INT8)
            out.append(value & 0xFF)
        elif compact and -(2**15) <= value < 2**15:
            out += _BH.pack(_T_INT16, value)
        elif -(2**31) <= value < 2**31:
            out += _BI.pack(_T_INT32, value)
        elif _I64_MIN <= value <= _I64_MAX:
            out += _BQ.pack(_T_INT64, value)
        else:
            raw = value.to_bytes(
                (value.bit_length() + 8) // 8, "big", signed=True
            )
            _pack_len(out, _T_BIGINT, len(raw))
            out += raw
    elif value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif kind is dict:
        k = value.get("k")
        if type(k) is str:
            ms = _MAP_SCHEMA_IDS.get(k)
            if ms is not None and len(value) == len(ms[1]) + 1:
                try:
                    vals = [value[key] for key in ms[1]]
                except KeyError:
                    vals = None
                if vals is not None:
                    out.append(_T_SCHEMA)
                    out.append(ms[0])
                    for v in vals:
                        _pack_into(out, v, compact)
                    return
        _pack_len(out, _T_MAP, len(value))
        for k, v in value.items():
            if type(k) is str:
                _pack_str(out, k)
            else:
                _pack_into(out, k, compact)
            _pack_into(out, v, compact)
    elif kind is list or kind is tuple:
        n = len(value)
        if n >= 4:
            # flat int vectors (clock rows, apply snapshots, long masks)
            # pack in ONE struct call at the narrowest element width;
            # shorter lists are cheaper per-element below
            lo = hi = 0
            for x in value:
                if type(x) is not int:
                    break
                if x < lo:
                    lo = x
                elif x > hi:
                    hi = x
            else:
                if lo >= _I64_MIN and hi <= _I64_MAX:
                    for width, letter, bound in _INTLIST_WIDTHS:
                        if -bound <= lo and hi < bound:
                            _pack_len(out, _T_INTLIST, n)
                            out.append(width)
                            out += struct.pack(f">{n}{letter}", *value)
                            return
        _pack_len(out, _T_LIST, n)
        for item in value:
            if type(item) is int and 0 <= item <= 127:
                out.append(_T_FIXINT | item)
            else:
                _pack_into(out, item, compact)
    elif kind is float:
        out += _BD.pack(_T_FLOAT, value)
    elif kind is bytes:
        _pack_len(out, _T_BYTES, len(value))
        out += value
    elif isinstance(value, bool):
        out.append(_T_TRUE if value else _T_FALSE)
    elif isinstance(value, (int, np.integer)):
        # numpy scalars and int subclasses degrade to plain ints,
        # mirroring what json.dumps does for them
        _pack_into(out, int(value), compact)
    elif isinstance(value, float):
        out += _BD.pack(_T_FLOAT, float(value))
    elif isinstance(value, (str, list, tuple, dict)):
        raise WireError(
            f"binary codec cannot encode {type(value).__name__} subclasses"
        )
    else:
        raise WireError(
            f"binary codec cannot encode {type(value).__name__} values"
        )


#: struct decoders per _T_INTLIST width code
_INTLIST_DECODE = {1: "b", 2: "h", 4: "i", 8: "q"}


def _unpack_from(body: bytes, pos: int) -> Tuple[Any, int]:
    tag = body[pos]
    pos += 1
    if tag >= _T_FIXINT:
        return tag - _T_FIXINT, pos
    if tag == _T_STR:
        n, pos = _unpack_len(body, pos)
        return body[pos : pos + n].decode("utf-8"), pos + n
    if tag == _T_INT8:
        b = body[pos]
        return b - 256 if b >= 128 else b, pos + 1
    if tag == _T_INT16:
        return _I16.unpack_from(body, pos)[0], pos + 2
    if tag == _T_INT32:
        return _I32.unpack_from(body, pos)[0], pos + 4
    if tag == _T_INT64:
        return _I64.unpack_from(body, pos)[0], pos + 8
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INTLIST:
        n, pos = _unpack_len(body, pos)
        width = body[pos]
        pos += 1
        letter = _INTLIST_DECODE.get(width)
        if letter is None:
            raise WireError(f"unknown int-vector width {width}")
        return list(struct.unpack_from(f">{n}{letter}", body, pos)), pos + n * width
    if tag == _T_LIST:
        n, pos = _unpack_len(body, pos)
        items = []
        append = items.append
        for _ in range(n):
            t2 = body[pos]
            if t2 >= _T_FIXINT:
                append(t2 - _T_FIXINT)
                pos += 1
            else:
                item, pos = _unpack_from(body, pos)
                append(item)
        return items, pos
    if tag == _T_SCHEMA:
        sid = body[pos]
        pos += 1
        if sid >= len(_MAP_SCHEMAS):
            raise WireError(f"unknown map schema id {sid}")
        kind_name, keys = _MAP_SCHEMAS[sid]
        mapping = {"k": kind_name}
        for key in keys:
            t2 = body[pos]
            if t2 >= _T_FIXINT:
                mapping[key] = t2 - _T_FIXINT
                pos += 1
            else:
                mapping[key], pos = _unpack_from(body, pos)
        return mapping, pos
    if tag == _T_MAP:
        n, pos = _unpack_len(body, pos)
        mapping = {}
        for _ in range(n):
            key, pos = _unpack_from(body, pos)
            val, pos = _unpack_from(body, pos)
            mapping[key] = val
        return mapping, pos
    if tag == _T_FLOAT:
        return _F64.unpack_from(body, pos)[0], pos + 8
    if tag == _T_BYTES:
        n, pos = _unpack_len(body, pos)
        return bytes(body[pos : pos + n]), pos + n
    if tag == _T_BIGINT:
        n, pos = _unpack_len(body, pos)
        return int.from_bytes(body[pos : pos + n], "big", signed=True), pos + n
    raise WireError(f"unknown binary value tag 0x{tag:02x}")


# ----------------------------------------------------------------------
# framing (codec-agnostic module API)
# ----------------------------------------------------------------------
def encode_frame(frame: Dict[str, Any], codec: Any = JSON_CODEC) -> bytes:
    """Serialize one frame dict to its length-prefixed wire bytes."""
    return codec.encode(frame)


def decode_body(body: bytes) -> Dict[str, Any]:
    """Decode one frame body (the bytes after the length prefix).

    Sniffs the codec from the first byte: :data:`BINARY_MAGIC` marks the
    binary codec, anything else is JSON.  A WIRE_VERSION 2 peer's JSON
    frames therefore decode unchanged; binary bodies would be rejected
    by a v2 peer's JSON-only decoder, which is why the binary codec is
    only ever *sent* after a successful ``cv >= 3`` handshake.
    """
    if not body:
        raise WireError("empty frame body")
    if body[0] == BINARY_MAGIC:
        return BINARY_CODEC.decode_body(body)
    return JSON_CODEC.decode_body(body)


def frame_length(prefix: bytes) -> int:
    """Parse and validate the 4-byte length prefix."""
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    return length


def make_frame(frame_type: str, **fields: Any) -> Dict[str, Any]:
    """A frame dict of ``frame_type`` with the current frame schema
    version (v2 — see :data:`JSON_WIRE_VERSION`; the v3 capability is a
    per-connection negotiation, not a frame field)."""
    frame: Dict[str, Any] = {"v": JSON_WIRE_VERSION, "t": frame_type}
    frame.update(fields)
    return frame


def err_frame(code: str, message: str) -> Dict[str, Any]:
    return make_frame("err", code=code, msg=message)


# ----------------------------------------------------------------------
# small-value codecs
# ----------------------------------------------------------------------
def encode_write_id(wid: Optional[WriteId]) -> Optional[list]:
    return None if wid is None else [wid.site, wid.seq]


def decode_write_id(value: Any) -> Optional[WriteId]:
    return None if value is None else WriteId(int(value[0]), int(value[1]))


# ----------------------------------------------------------------------
# protocol metadata codec (tagged by "k")
# ----------------------------------------------------------------------
def encode_meta(meta: Any, compact: bool = False) -> Any:
    """Encode one piggybacked metadata object to its JSON shape.

    ``compact`` (v4 connections only) selects the metadata-lean
    encodings: ``ot4`` for Opt-Track metas — record clocks relative to
    the meta clock (small ints instead of full-width absolutes) and the
    PURGE-retention records (newest per sender, empty destination set —
    typically the majority of a mature log) packed as two-int pairs
    with the redundant destination element dropped.  Both shapes decode
    to the exact objects the plain kinds carry; a v3 peer never sees
    them (:func:`codec_for` gates the emitting connections).
    """
    if meta is None:
        return None
    if isinstance(meta, OptTrackMeta):
        if compact:
            clock = meta.clock
            latest = meta.log.latest_by_sender
            triples: List[int] = []
            empties: List[int] = []
            # .get: a clock-0 record never registers in latest_by_sender,
            # so it must take the general triple shape
            for (s, c), d in sorted(meta.log.entries.items()):
                if d == 0 and c == latest.get(s):
                    empties.append(int(s))
                    empties.append(int(c) - clock)
                else:
                    triples.append(int(s))
                    triples.append(int(c) - clock)
                    triples.append(int(d))
            return {
                "k": "ot4",
                "c": clock,
                "rm": meta.replicas_mask,
                "log": triples,
                "e": empties,
            }
        return {
            "k": "ot",
            "c": meta.clock,
            "rm": meta.replicas_mask,
            "log": _encode_deplog(meta.log),
        }
    if isinstance(meta, CrpMeta):
        log: List[int] = []
        for s, c in sorted(meta.log.items()):
            log.append(int(s))
            log.append(int(c))
        return {"k": "crp", "c": meta.clock, "log": log}
    if isinstance(meta, DepLog):
        if compact:
            latest = meta.latest_by_sender
            base = max(latest.values(), default=0)
            triples: List[int] = []
            empties: List[int] = []
            for (s, c), d in sorted(meta.entries.items()):
                if d == 0 and c == latest.get(s):
                    empties.append(int(s))
                    empties.append(int(c) - base)
                else:
                    triples.append(int(s))
                    triples.append(int(c) - base)
                    triples.append(int(d))
            return {"k": "dl4", "c": base, "log": triples, "e": empties}
        return {"k": "dl", "e": _encode_deplog(meta)}
    if isinstance(meta, MatrixClock):
        # flat row-major (the matrix is square): one contiguous int list
        # packs as a single binary intlist instead of n nested rows
        return {"k": "mc", "m": meta.m.ravel().tolist()}
    if isinstance(meta, VectorClock):
        return {"k": "vc", "v": meta.v.tolist()}
    if isinstance(meta, np.ndarray):
        return {"k": "arr", "v": [int(x) for x in meta]}
    if isinstance(meta, tuple):
        if all(isinstance(x, (int, np.integer)) for x in meta):
            # flat clock vectors, e.g. opt-track's apply-progress snapshot
            return {"k": "ivec", "v": [int(x) for x in meta]}
        # opt-track dependency summaries: tuples of (sender, clock) pairs,
        # flattened for the same single-intlist reason as the dep log
        flat: List[int] = []
        for z, c in meta:
            flat.append(int(z))
            flat.append(int(c))
        return {"k": "pairs", "v": flat}
    raise WireError(f"unserializable protocol metadata {type(meta).__name__}")


def decode_meta(data: Any) -> Any:
    """Decode the output of :func:`encode_meta` back to protocol objects."""
    if data is None:
        return None
    if not isinstance(data, dict) or "k" not in data:
        raise WireError(f"malformed metadata payload {data!r}")
    kind = data["k"]
    if kind == "ot":
        return OptTrackMeta(
            int(data["c"]), int(data["rm"]), _decode_deplog(data["log"])
        )
    if kind == "ot4":
        clock = int(data["c"])
        triples = data["log"]
        entries = {
            (int(triples[i]), int(triples[i + 1]) + clock): int(triples[i + 2])
            for i in range(0, len(triples), 3)
        }
        empties = data["e"]
        for i in range(0, len(empties), 2):
            entries[(int(empties[i]), int(empties[i + 1]) + clock)] = 0
        return OptTrackMeta(clock, int(data["rm"]), DepLog(entries))
    if kind == "crp":
        log = data["log"]
        return CrpMeta(
            int(data["c"]),
            {int(log[i]): int(log[i + 1]) for i in range(0, len(log), 2)},
        )
    if kind == "dl":
        return _decode_deplog(data["e"])
    if kind == "dl4":
        base = int(data["c"])
        triples = data["log"]
        entries = {
            (int(triples[i]), int(triples[i + 1]) + base): int(triples[i + 2])
            for i in range(0, len(triples), 3)
        }
        empties = data["e"]
        for i in range(0, len(empties), 2):
            entries[(int(empties[i]), int(empties[i + 1]) + base)] = 0
        return DepLog(entries)
    if kind == "mc":
        flat = np.array(data["m"], dtype=np.int64)
        n = int(np.sqrt(flat.size))
        return MatrixClock(n, flat.reshape(n, n))
    if kind == "vc":
        v = np.array(data["v"], dtype=np.int64)
        return VectorClock(v.shape[0], v)
    if kind == "arr":
        return np.array(data["v"], dtype=np.int64)
    if kind == "ivec":
        return tuple(int(x) for x in data["v"])
    if kind == "ivr":
        # relative clock vector (v4): [ceiling, ceiling - x, ...] — the
        # per-element offsets of a near-uniform vector (an apply
        # snapshot) fit one byte where the absolutes need two or four
        v = data["v"]
        base = int(v[0])
        return tuple(base - int(x) for x in v[1:])
    if kind == "pairs":
        v = data["v"]
        return tuple((int(v[i]), int(v[i + 1])) for i in range(0, len(v), 2))
    raise WireError(f"unknown metadata kind {kind!r}")


def _encode_deplog(log: DepLog) -> List[int]:
    """Flat ``[sender, clock, dests, ...]`` triples: a single contiguous
    int list packs as one binary intlist (and is shorter as JSON too)."""
    flat: List[int] = []
    for (s, c), d in sorted(log.entries.items()):
        flat.append(int(s))
        flat.append(int(c))
        flat.append(int(d))
    return flat


def _decode_deplog(entries: Any) -> DepLog:
    return DepLog(
        {
            (int(entries[i]), int(entries[i + 1])): int(entries[i + 2])
            for i in range(0, len(entries), 3)
        }
    )


# ----------------------------------------------------------------------
# negotiated id interning (v4)
# ----------------------------------------------------------------------
#: hard cap on one handshake's intern table; keeps the JSON handshake
#: frame small even against a placement map with millions of variables —
#: names beyond the cap simply stay uninterned strings
INTERN_TABLE_MAX = 256


def intern_table_names(variables: Any) -> List[str]:
    """The intern table a handshake receiver advertises: its variable
    names, sorted for determinism, capped at :data:`INTERN_TABLE_MAX`."""
    return sorted(str(v) for v in variables)[:INTERN_TABLE_MAX]


class InternTable:
    """One side's per-connection id interning table (v4).

    The table is built once from the handshake receiver's ``itab`` list
    (position = id) and is immutable afterwards: both directions of a
    connection resolve against the same list, so there is no
    synchronization and no race.  ``encode_var`` maps a known name to its
    small int (unknown names pass through as strings); ``decode_var``
    inverts it.  Since :data:`repro.types.VarId` is ``str``, an int in a
    ``var`` field always means an interned id.
    """

    __slots__ = ("names", "_ids")

    def __init__(self, names: Any) -> None:
        self.names: Tuple[str, ...] = tuple(str(n) for n in names)
        self._ids: Dict[str, int] = {n: i for i, n in enumerate(self.names)}

    def encode_var(self, var: Any) -> Any:
        if type(var) is str:
            interned = self._ids.get(var)
            if interned is not None:
                return interned
        return var

    def decode_var(self, var: Any) -> Any:
        if type(var) is int:
            try:
                return self.names[var]
            except IndexError:
                raise WireError(
                    f"interned var id {var} outside the negotiated table "
                    f"of {len(self.names)} names"
                ) from None
        return var


def resolve_var(var: Any, itab: Optional[InternTable]) -> Any:
    """Resolve a possibly-interned ``var`` field against the receiver's
    own advertised table (int ids without a table are a protocol error —
    the peer sent interned ids we never offered)."""
    if type(var) is int:
        if itab is None:
            raise WireError("interned var id on a connection without a table")
        return itab.decode_var(var)
    return var


# ----------------------------------------------------------------------
# message codecs
# ----------------------------------------------------------------------
def _derivable_write_id(msg: UpdateMessage) -> bool:
    """True when the write id repeats information already on the frame:
    every clock-bearing metadata kind here names its write as
    ``WriteId(sender, meta.clock)`` (opt-track and CRP both stamp the
    writer's own sequence), so a lean v4 frame can omit it."""
    wid = msg.write_id
    return wid.site == msg.sender and getattr(msg.meta, "clock", None) == wid.seq


def encode_update(
    msg: UpdateMessage,
    link_seq: int,
    itab: Optional[InternTable] = None,
    lean: bool = False,
) -> Dict[str, Any]:
    """A REPLICATE frame for one :class:`UpdateMessage`.

    ``link_seq`` is the per-peer-link sequence number used for duplicate
    suppression across reconnect resends.  ``itab`` (v4) interns the
    variable name against the receiver's advertised table; ``lean``
    (also v4-only — set by :class:`DeltaEncoder`) sends ``w: None`` when
    the write id is derivable from ``(src, meta.clock)`` (which
    :func:`decode_update` reconstructs) and selects the compact ``ot4``
    metadata encoding.
    """
    return make_frame(
        "repl",
        var=msg.var if itab is None else itab.encode_var(msg.var),
        value=msg.value,
        w=None if lean and _derivable_write_id(msg) else encode_write_id(msg.write_id),
        src=msg.sender,
        dst=msg.dest,
        meta=encode_meta(msg.meta, compact=lean),
        ls=link_seq,
    )


def _update_write_id(frame: Dict[str, Any], src: int, meta: Any) -> WriteId:
    """The frame's write id, rebuilding an omitted (lean v4) one from
    the sender and the metadata clock."""
    wid = decode_write_id(frame["w"])
    if wid is not None:
        return wid
    clock = getattr(meta, "clock", None)
    if clock is None:
        raise WireError("repl frame without a write id")
    return WriteId(src, int(clock))


def decode_update(
    frame: Dict[str, Any], itab: Optional[InternTable] = None
) -> UpdateMessage:
    try:
        meta = decode_meta(frame["meta"])
        src = int(frame["src"])
        return UpdateMessage(
            var=resolve_var(frame["var"], itab),
            value=frame["value"],
            write_id=_update_write_id(frame, src, meta),
            sender=src,
            dest=int(frame["dst"]),
            meta=meta,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed repl frame: {exc}") from None


#: every frame kind that carries one replicated update; the ``.t``
#: variants additionally carry the origin's issue stamp
REPL_FRAME_KINDS = ("repl", "repl.delta", "repl.t", "repl.delta.t")


def stamp_issue(frame: Dict[str, Any], issued_ms: float) -> Dict[str, Any]:
    """Stamp a ``repl``/``repl.delta`` frame with the time its write was
    issued at the origin (ms on the origin's clock), switching the type
    to the ``.t`` variant; mutates and returns the frame.  Only valid on
    links whose peer advertised :data:`STATS_CAPABILITY` — a peer that
    never negotiated it does not know the stamped types."""
    frame["t"] = frame["t"] + ".t"
    frame["it"] = int(issued_ms)
    return frame


def strip_issue(frame: Dict[str, Any]) -> Optional[int]:
    """Remove an issue stamp in place, restoring the base repl type;
    returns the stamp (origin-clock ms) or ``None`` for unstamped
    frames.  After this the frame is field-for-field what the peer
    would have sent without the stats capability, so every downstream
    decode path is unchanged."""
    if frame["t"].endswith(".t"):
        frame["t"] = frame["t"][:-2]
        it = frame.pop("it", None)
        return None if it is None else int(it)
    return None


# ----------------------------------------------------------------------
# delta metadata codec (v4: repl.delta chaining)
# ----------------------------------------------------------------------
def encode_meta_delta(meta: Any, base: Any) -> Optional[Dict[str, Any]]:
    """Encode ``meta`` as a diff against ``base``, the metadata of the
    previous frame sent on the same connection.

    Returns ``None`` when the pair does not support diffing (different
    kinds, kinds without incremental structure) or when the diff would
    not beat the full encoding — the caller then sends a full ``repl``
    frame, which also resets the receiver's chain baseline to ``meta``.
    Read-only on both metadata objects.
    """
    if isinstance(meta, OptTrackMeta) and isinstance(base, OptTrackMeta):
        removed, updated, added = meta.log.diff(base.log)
        # a full encoding costs 3 ints per record; fall back when the
        # index-coded diff is no cheaper (wholesale turnover, tiny logs)
        if (
            len(removed) + len(updated) + len(added)
            >= 3 * len(meta.log.entries)
        ):
            return None
        # added-record clocks travel relative to the meta clock, like
        # the ot4 full encoding: recent records (the common additions)
        # become one-byte offsets
        clock = meta.clock
        for i in range(1, len(added), 3):
            added[i] -= clock
        return {
            "k": "otd",
            # the clock advance over the baseline: small on a live link,
            # where the absolute clock would cost a full-width int
            "c": clock - base.clock,
            "rm": meta.replicas_mask,
            "x": removed,
            "u": updated,
            "n": added,
        }
    if isinstance(meta, CrpMeta) and isinstance(base, CrpMeta):
        log, base_log = meta.log, base.log
        gone = [int(s) for s in sorted(base_log) if s not in log]
        moved: List[int] = []
        for s, c in sorted(log.items()):
            if base_log.get(s) != c:
                moved.append(int(s))
                moved.append(int(c))
        if len(gone) + len(moved) >= 2 * len(log):
            return None
        return {"k": "crpd", "c": meta.clock, "x": gone, "ch": moved}
    if (
        isinstance(meta, MatrixClock)
        and isinstance(base, MatrixClock)
        and meta.n == base.n
    ):
        flat = meta.m.ravel()
        base_flat = base.m.ravel()
        (hot,) = np.nonzero(flat != base_flat)
        if 2 * hot.size >= flat.size:
            return None
        changed = []
        for i in hot:
            changed.append(int(i))
            changed.append(int(flat[i]))
        return {"k": "mcd", "n": meta.n, "ch": changed}
    return None


def decode_meta_delta(data: Any, base: Any) -> Any:
    """Reconstruct the metadata that :func:`encode_meta_delta` diffed
    against ``base`` (the receiver's chain baseline)."""
    if not isinstance(data, dict) or "k" not in data:
        raise WireError(f"malformed delta metadata payload {data!r}")
    kind = data["k"]
    try:
        if kind == "otd":
            if not isinstance(base, OptTrackMeta):
                raise WireError(f"otd delta against {type(base).__name__}")
            clock = base.clock + int(data["c"])
            added = list(data["n"])
            for i in range(1, len(added), 3):
                added[i] += clock
            return OptTrackMeta(
                clock,
                int(data["rm"]),
                base.log.apply_diff(data["x"], data["u"], added),
            )
        if kind == "crpd":
            if not isinstance(base, CrpMeta):
                raise WireError(f"crpd delta against {type(base).__name__}")
            log = dict(base.log)
            for s in data["x"]:
                log.pop(int(s), None)
            ch = data["ch"]
            for i in range(0, len(ch), 2):
                log[int(ch[i])] = int(ch[i + 1])
            return CrpMeta(int(data["c"]), log)
        if kind == "mcd":
            n = int(data["n"])
            if not isinstance(base, MatrixClock) or base.n != n:
                raise WireError(f"mcd delta against {type(base).__name__}")
            m = base.m.copy()
            flat = m.ravel()
            ch = data["ch"]
            for i in range(0, len(ch), 2):
                flat[int(ch[i])] = int(ch[i + 1])
            return MatrixClock(n, m)
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise WireError(f"malformed {kind!r} delta metadata: {exc}") from None
    raise WireError(f"unknown delta metadata kind {kind!r}")


class DeltaEncoder:
    """Per-connection sender state for the v4 chained repl stream.

    Owns the chain baseline (the metadata of the previous repl frame
    encoded on this connection) and the negotiated intern table.  The
    link send path creates one per established ``cv >= 4`` connection
    and drops it on disconnect — a fresh receiver therefore always gets
    one full frame first (``_base is None``), exactly mirroring
    :class:`DeltaDecoder`'s reset on its side.  This class and the
    decoder are the only places delta baselines mutate; the wire-delta
    lint rule holds the service layer to that.
    """

    __slots__ = ("itab", "_base")

    def __init__(self, itab: Optional[InternTable] = None) -> None:
        self.itab = itab
        self._base: Any = None

    def encode_update(self, msg: UpdateMessage, link_seq: int) -> Dict[str, Any]:
        """The next frame of the chain: ``repl.delta`` against the
        previous frame's metadata when profitable, full ``repl``
        otherwise.  Either way the baseline advances to ``msg.meta``."""
        base, self._base = self._base, msg.meta
        delta = None if base is None else encode_meta_delta(msg.meta, base)
        if delta is None:
            return encode_update(msg, link_seq, self.itab, lean=True)
        return make_frame(
            "repl.delta",
            var=msg.var if self.itab is None else self.itab.encode_var(msg.var),
            value=msg.value,
            w=None if _derivable_write_id(msg) else encode_write_id(msg.write_id),
            src=msg.sender,
            dst=msg.dest,
            meta=delta,
            ls=link_seq,
        )


class DeltaDecoder:
    """Per-sender receiver state mirroring :class:`DeltaEncoder`.

    The baseline is the metadata of the last repl frame *processed* from
    this sender.  The server's link discipline only ever decodes the
    contiguous ``ls == seen + 1`` frame (duplicates and gaps are never
    decoded), and the sender chains against the previous frame it sent
    on the connection, so the baselines agree by construction.  A
    ``repl.delta`` arriving with no or mismatched baseline raises
    :class:`WireError` — the server drops the connection and the sender
    reconnects, re-sending from the ack with a full first frame.
    """

    __slots__ = ("_base",)

    def __init__(self) -> None:
        self._base: Any = None

    def reset(self) -> None:
        """Forget the chain (epoch change: a new sender incarnation)."""
        self._base = None

    def decode_update(
        self, frame: Dict[str, Any], itab: Optional[InternTable] = None
    ) -> UpdateMessage:
        """Decode the next processed frame of the chain (full or delta),
        advancing the baseline to its metadata."""
        if frame["t"] != "repl.delta":
            msg = decode_update(frame, itab)
            self._base = msg.meta
            return msg
        if self._base is None:
            raise WireError("repl.delta with no chain baseline")
        try:
            meta = decode_meta_delta(frame["meta"], self._base)
            src = int(frame["src"])
            msg = UpdateMessage(
                var=resolve_var(frame["var"], itab),
                value=frame["value"],
                write_id=_update_write_id(frame, src, meta),
                sender=src,
                dest=int(frame["dst"]),
                meta=meta,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WireError(f"malformed repl.delta frame: {exc}") from None
        self._base = meta
        return msg


def encode_fetch_request(req: FetchRequest) -> Dict[str, Any]:
    return make_frame(
        "fetch",
        var=req.var,
        rq=req.requester,
        sv=req.server,
        fid=req.fetch_id,
        deps=encode_meta(req.deps),
    )


def decode_fetch_request(frame: Dict[str, Any]) -> FetchRequest:
    try:
        return FetchRequest(
            var=frame["var"],
            requester=int(frame["rq"]),
            server=int(frame["sv"]),
            fetch_id=int(frame["fid"]),
            deps=decode_meta(frame["deps"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed fetch frame: {exc}") from None


def encode_fetch_reply(
    reply: FetchReply,
    compact: bool = False,
    itab: Optional[InternTable] = None,
) -> Dict[str, Any]:
    """A fetch.ok frame.  ``compact`` (v4 connections) selects the lean
    metadata shapes: the ``dl4``/``ot4`` log encodings and the ``ivr``
    relative apply-snapshot vector — the snapshot's entries cluster near
    its maximum on a live cluster, so the offsets pack one byte each.
    ``itab`` is the *serving* site's own intern table: the requester
    holds a copy from the ``link.ok`` handshake, so replies may intern
    the variable name against it."""
    applied: Any = reply.applied
    if compact and applied is not None:
        base = max(applied, default=0)
        vec = [base]
        vec.extend(base - int(a) for a in applied)
        applied = {"k": "ivr", "v": vec}
    else:
        applied = encode_meta(applied)
    return make_frame(
        "fetch.ok",
        var=reply.var if itab is None else itab.encode_var(reply.var),
        value=reply.value,
        w=encode_write_id(reply.write_id),
        sv=reply.server,
        rq=reply.requester,
        fid=reply.fetch_id,
        meta=encode_meta(reply.meta, compact=compact),
        applied=applied,
    )


def decode_fetch_reply(
    frame: Dict[str, Any], itab: Optional[InternTable] = None
) -> FetchReply:
    try:
        return FetchReply(
            var=resolve_var(frame["var"], itab),
            value=frame["value"],
            write_id=decode_write_id(frame["w"]),
            server=int(frame["sv"]),
            requester=int(frame["rq"]),
            fetch_id=int(frame["fid"]),
            meta=decode_meta(frame["meta"]),
            applied=decode_meta(frame["applied"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed fetch.ok frame: {exc}") from None


__all__ = [
    "WIRE_VERSION",
    "BATCH_WIRE_VERSION",
    "DELTA_WIRE_VERSION",
    "JSON_WIRE_VERSION",
    "MIN_WIRE_VERSION",
    "PROFILE_CAPS",
    "profile_caps",
    "INTERN_TABLE_MAX",
    "intern_table_names",
    "InternTable",
    "resolve_var",
    "DeltaEncoder",
    "DeltaDecoder",
    "encode_meta_delta",
    "decode_meta_delta",
    "BINARY_MAGIC",
    "MAX_FRAME_BYTES",
    "RETRIABLE",
    "STATS_CAPABILITY",
    "GOSSIP_CAPABILITY",
    "REPL_FRAME_KINDS",
    "stamp_issue",
    "strip_issue",
    "JsonCodec",
    "BinaryCodec",
    "JSON_CODEC",
    "BINARY_CODEC",
    "BINARY_CODEC_V4",
    "CODECS",
    "codec_for",
    "encode_frame",
    "decode_body",
    "frame_length",
    "make_frame",
    "err_frame",
    "encode_write_id",
    "decode_write_id",
    "encode_meta",
    "decode_meta",
    "encode_update",
    "decode_update",
    "encode_fetch_request",
    "decode_fetch_request",
    "encode_fetch_reply",
    "decode_fetch_reply",
]
