"""Wire format of the networked KV service.

Frames are **length-prefixed JSON**: a 4-byte big-endian unsigned length
followed by one UTF-8 JSON object.  Every frame carries the wire version
(``"v"``) and a frame type (``"t"``); a peer that receives a frame with an
unknown version must reject the connection rather than guess — the version
is bumped on any incompatible change (field renames, semantic changes),
never for additive optional fields.

Frame types
-----------
Client-facing request/response::

    put      {v, t:"put", var, value}            -> put.ok {w} | err
    get      {v, t:"get", var}                   -> get.ok {value, w, by} | err
    ping     {v, t:"ping"}                       -> ping.ok {site}
    kill     {v, t:"kill"}                       -> kill.ok {}   (chaos)

Server-to-server (peer links)::

    link.hello  {v, t:"link.hello", src, epoch} -> link.ok {ack}
             opens every peer-link connection.  ``epoch`` identifies the
             sender *incarnation*: the receiver keys its repl dedup
             state by (src, epoch) and resets it when a new epoch
             connects, so a restarted site's fresh sequence numbers are
             not mistaken for duplicates.  ``ack`` is the receiver's
             cumulative per-link high-water mark; the sender retires
             everything up to it and resends the rest.
    repl     one UpdateMessage (REPLICATE); ``ls`` is a contiguous
             per-link sequence number.  The receiver processes only
             ``ls == seen + 1`` (drops duplicates, refuses gaps without
             acking) and answers ``repl.ack {a}`` — a cumulative ack
             sent only *after* the update is applied or parked.  The
             sender retires a frame on ack, never on transport send
             success alone: at-least-once delivery, exactly-once apply.
    fetch    one FetchRequest, answered by fetch.ok (correlated by ``fid``)

``err`` frames carry a machine-readable ``code``; codes in
:data:`RETRIABLE` mark failures the client may retry (elsewhere).

Protocol metadata (matrix clocks, dependency logs, apply snapshots) is
piggybacked through the tagged codec in :func:`encode_meta` /
:func:`decode_meta`, mirroring the in-memory types of
:mod:`repro.core.messages` exactly — the decoded objects are the same
classes the protocols consume, so a protocol instance cannot tell a wire
peer from an in-process one.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.clocks import MatrixClock, VectorClock
from repro.core.log import DepLog
from repro.core.messages import (
    CrpMeta,
    FetchReply,
    FetchRequest,
    OptTrackMeta,
    UpdateMessage,
)
from repro.errors import WireError
from repro.types import WriteId

#: bump on incompatible frame changes (see module docstring).
#: v2: acknowledged peer links — repl requires the link.hello handshake,
#: contiguous ``ls``, and repl.ack-driven retirement; a v1 peer would
#: wedge replication silently, so the versions must not interoperate.
WIRE_VERSION = 2

#: hard cap on one frame's JSON body; protects both sides from a corrupt
#: or hostile length prefix
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")

#: ``err`` codes the client may retry (possibly against another replica)
RETRIABLE = ("read-timeout", "unavailable", "shutting-down")


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(frame: Dict[str, Any]) -> bytes:
    """Serialize one frame dict to its length-prefixed wire bytes."""
    body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LEN.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    """Decode one frame body (the bytes after the length prefix)."""
    try:
        frame = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame body: {exc}") from None
    if not isinstance(frame, dict):
        raise WireError(f"frame must be a JSON object, got {type(frame).__name__}")
    version = frame.get("v")
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version!r} (this side speaks "
            f"{WIRE_VERSION}); upgrade the older peer"
        )
    if not isinstance(frame.get("t"), str):
        raise WireError("frame missing its type field 't'")
    return frame


def frame_length(prefix: bytes) -> int:
    """Parse and validate the 4-byte length prefix."""
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    return length


def make_frame(frame_type: str, **fields: Any) -> Dict[str, Any]:
    """A frame dict of ``frame_type`` with the current wire version."""
    frame: Dict[str, Any] = {"v": WIRE_VERSION, "t": frame_type}
    frame.update(fields)
    return frame


def err_frame(code: str, message: str) -> Dict[str, Any]:
    return make_frame("err", code=code, msg=message)


# ----------------------------------------------------------------------
# small-value codecs
# ----------------------------------------------------------------------
def encode_write_id(wid: Optional[WriteId]) -> Optional[list]:
    return None if wid is None else [wid.site, wid.seq]


def decode_write_id(value: Any) -> Optional[WriteId]:
    return None if value is None else WriteId(int(value[0]), int(value[1]))


# ----------------------------------------------------------------------
# protocol metadata codec (tagged by "k")
# ----------------------------------------------------------------------
def encode_meta(meta: Any) -> Any:
    """Encode one piggybacked metadata object to its JSON shape."""
    if meta is None:
        return None
    if isinstance(meta, OptTrackMeta):
        return {
            "k": "ot",
            "c": meta.clock,
            "rm": meta.replicas_mask,
            "log": _encode_deplog(meta.log),
        }
    if isinstance(meta, CrpMeta):
        return {
            "k": "crp",
            "c": meta.clock,
            "log": [[int(s), int(c)] for s, c in sorted(meta.log.items())],
        }
    if isinstance(meta, DepLog):
        return {"k": "dl", "e": _encode_deplog(meta)}
    if isinstance(meta, MatrixClock):
        return {"k": "mc", "m": meta.m.tolist()}
    if isinstance(meta, VectorClock):
        return {"k": "vc", "v": meta.v.tolist()}
    if isinstance(meta, np.ndarray):
        return {"k": "arr", "v": [int(x) for x in meta]}
    if isinstance(meta, tuple):
        if all(isinstance(x, (int, np.integer)) for x in meta):
            # flat clock vectors, e.g. opt-track's apply-progress snapshot
            return {"k": "ivec", "v": [int(x) for x in meta]}
        # opt-track dependency summaries: tuples of (sender, clock) pairs
        return {"k": "pairs", "v": [[int(z), int(c)] for z, c in meta]}
    raise WireError(f"unserializable protocol metadata {type(meta).__name__}")


def decode_meta(data: Any) -> Any:
    """Decode the output of :func:`encode_meta` back to protocol objects."""
    if data is None:
        return None
    if not isinstance(data, dict) or "k" not in data:
        raise WireError(f"malformed metadata payload {data!r}")
    kind = data["k"]
    if kind == "ot":
        return OptTrackMeta(
            int(data["c"]), int(data["rm"]), _decode_deplog(data["log"])
        )
    if kind == "crp":
        return CrpMeta(int(data["c"]), {int(s): int(c) for s, c in data["log"]})
    if kind == "dl":
        return _decode_deplog(data["e"])
    if kind == "mc":
        m = np.array(data["m"], dtype=np.int64)
        return MatrixClock(m.shape[0], m)
    if kind == "vc":
        v = np.array(data["v"], dtype=np.int64)
        return VectorClock(v.shape[0], v)
    if kind == "arr":
        return np.array(data["v"], dtype=np.int64)
    if kind == "ivec":
        return tuple(int(x) for x in data["v"])
    if kind == "pairs":
        return tuple((int(z), int(c)) for z, c in data["v"])
    raise WireError(f"unknown metadata kind {kind!r}")


def _encode_deplog(log: DepLog) -> list:
    return [[int(s), int(c), int(d)] for (s, c), d in sorted(log.entries.items())]


def _decode_deplog(entries: Any) -> DepLog:
    return DepLog({(int(s), int(c)): int(d) for s, c, d in entries})


# ----------------------------------------------------------------------
# message codecs
# ----------------------------------------------------------------------
def encode_update(msg: UpdateMessage, link_seq: int) -> Dict[str, Any]:
    """A REPLICATE frame for one :class:`UpdateMessage`.

    ``link_seq`` is the per-peer-link sequence number used for duplicate
    suppression across reconnect resends.
    """
    return make_frame(
        "repl",
        var=msg.var,
        value=msg.value,
        w=encode_write_id(msg.write_id),
        src=msg.sender,
        dst=msg.dest,
        meta=encode_meta(msg.meta),
        ls=link_seq,
    )


def decode_update(frame: Dict[str, Any]) -> UpdateMessage:
    try:
        wid = decode_write_id(frame["w"])
        if wid is None:
            raise WireError("repl frame without a write id")
        return UpdateMessage(
            var=frame["var"],
            value=frame["value"],
            write_id=wid,
            sender=int(frame["src"]),
            dest=int(frame["dst"]),
            meta=decode_meta(frame["meta"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed repl frame: {exc}") from None


def encode_fetch_request(req: FetchRequest) -> Dict[str, Any]:
    return make_frame(
        "fetch",
        var=req.var,
        rq=req.requester,
        sv=req.server,
        fid=req.fetch_id,
        deps=encode_meta(req.deps),
    )


def decode_fetch_request(frame: Dict[str, Any]) -> FetchRequest:
    try:
        return FetchRequest(
            var=frame["var"],
            requester=int(frame["rq"]),
            server=int(frame["sv"]),
            fetch_id=int(frame["fid"]),
            deps=decode_meta(frame["deps"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed fetch frame: {exc}") from None


def encode_fetch_reply(reply: FetchReply) -> Dict[str, Any]:
    return make_frame(
        "fetch.ok",
        var=reply.var,
        value=reply.value,
        w=encode_write_id(reply.write_id),
        sv=reply.server,
        rq=reply.requester,
        fid=reply.fetch_id,
        meta=encode_meta(reply.meta),
        applied=encode_meta(reply.applied),
    )


def decode_fetch_reply(frame: Dict[str, Any]) -> FetchReply:
    try:
        return FetchReply(
            var=frame["var"],
            value=frame["value"],
            write_id=decode_write_id(frame["w"]),
            server=int(frame["sv"]),
            requester=int(frame["rq"]),
            fetch_id=int(frame["fid"]),
            meta=decode_meta(frame["meta"]),
            applied=decode_meta(frame["applied"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed fetch.ok frame: {exc}") from None


__all__ = [
    "WIRE_VERSION",
    "MAX_FRAME_BYTES",
    "RETRIABLE",
    "encode_frame",
    "decode_body",
    "frame_length",
    "make_frame",
    "err_frame",
    "encode_write_id",
    "decode_write_id",
    "encode_meta",
    "decode_meta",
    "encode_update",
    "decode_update",
    "encode_fetch_request",
    "decode_fetch_request",
    "encode_fetch_reply",
    "decode_fetch_reply",
]
