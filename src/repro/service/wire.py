"""Wire format of the networked KV service.

Frames are **length-prefixed**: a 4-byte big-endian unsigned length
followed by one frame body in one of two codecs:

* the **JSON codec** (:class:`JsonCodec`, frame schema version 2) — a
  UTF-8 JSON object, byte-compatible with WIRE_VERSION 2 peers.  This is
  the codec every connection starts in and the permanent fallback for
  older peers;
* the **binary codec** (:class:`BinaryCodec`, the WIRE_VERSION 3 wire) —
  a struct-packed header (magic byte, frame schema version, frame-type
  tag) followed by the frame's fields in a compact msgpack-style
  encoding (single-byte type tags, varlength ints, flat ``struct``-packed
  integer vectors for dependency logs and clock rows).  A JSON body
  always starts with ``{`` (0x7B) and a binary body always starts with
  :data:`BINARY_MAGIC` (0xB3, not a valid UTF-8 lead byte), so a
  WIRE_VERSION 3 receiver decodes either codec per frame with no
  ambiguity (:func:`decode_body` sniffs the first byte).

Codec choice is **negotiated, never assumed**: every handshake frame
(``link.hello``/``link.ok`` between peers, ``hello``/``hello.ok`` from
clients) travels as JSON and carries the sender's capability version
``cv``.  Only when both ends announced ``cv >= 3`` does a connection
switch to the binary codec — a WIRE_VERSION 2 peer never sees a binary
byte.  WIRE_VERSION 3 additionally buys the *batched* wire profile
(coalesced frame flushes and cumulative batched acks, see
:mod:`repro.service.server`); a v2 peer keeps the per-frame profile.

Every frame carries the frame schema version (``"v"``, currently
:data:`JSON_WIRE_VERSION` — the field layout is unchanged from v2, which
is what makes the JSON fallback interoperable) and a frame type
(``"t"``).  A peer that receives a frame with an unknown version must
reject the connection rather than guess — the schema version is bumped
on any incompatible change (field renames, semantic changes), never for
additive optional fields such as ``cv``.

Frame types
-----------
Client-facing request/response::

    hello    {v, t:"hello", cv}                  -> hello.ok {site, cv}
             optional codec negotiation (one round trip per pooled
             connection).  ``cv`` is the client's capability version;
             the server answers with the minimum of both sides and the
             connection switches to the binary codec when that is >= 3.
             A v2 server answers ``err bad-frame`` and the client stays
             on JSON — the fallback path.
    put      {v, t:"put", var, value}            -> put.ok {w} | err
    get      {v, t:"get", var}                   -> get.ok {value, w, by} | err
    ping     {v, t:"ping"}                       -> ping.ok {site}
    kill     {v, t:"kill"}                       -> kill.ok {}   (chaos)

Server-to-server (peer links)::

    link.hello  {v, t:"link.hello", src, epoch, cv} -> link.ok {ack, cv}
             opens every peer-link connection.  ``epoch`` identifies the
             sender *incarnation*: the receiver keys its repl dedup
             state by (src, epoch) and resets it when a new epoch
             connects, so a restarted site's fresh sequence numbers are
             not mistaken for duplicates.  ``ack`` is the receiver's
             cumulative per-link high-water mark; the sender retires
             everything up to it and resends the rest.
    repl     one UpdateMessage (REPLICATE); ``ls`` is a contiguous
             per-link sequence number.  The receiver processes only
             ``ls == seen + 1`` (drops duplicates, refuses gaps without
             acking) and answers ``repl.ack {a}`` — a cumulative ack
             sent only *after* the update is applied or parked.  The
             sender retires a frame on ack, never on transport send
             success alone: at-least-once delivery, exactly-once apply.
    fetch    one FetchRequest, answered by fetch.ok (correlated by ``fid``)

``err`` frames carry a machine-readable ``code``; codes in
:data:`RETRIABLE` mark failures the client may retry (elsewhere).

Protocol metadata (matrix clocks, dependency logs, apply snapshots) is
piggybacked through the tagged codec in :func:`encode_meta` /
:func:`decode_meta`, mirroring the in-memory types of
:mod:`repro.core.messages` exactly — the decoded objects are the same
classes the protocols consume, so a protocol instance cannot tell a wire
peer from an in-process one.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.clocks import MatrixClock, VectorClock
from repro.core.log import DepLog
from repro.core.messages import (
    CrpMeta,
    FetchReply,
    FetchRequest,
    OptTrackMeta,
    UpdateMessage,
)
from repro.errors import WireError
from repro.types import WriteId

#: the connection capability this side speaks (see module docstring).
#: v2: acknowledged peer links — repl requires the link.hello handshake,
#: contiguous ``ls``, and repl.ack-driven retirement; a v1 peer would
#: wedge replication silently, so the versions must not interoperate.
#: v3: negotiated binary codec + batched wire profile (coalesced frame
#: flushes, cumulative batched acks).  Frame *fields* are unchanged from
#: v2 — a v3 peer falls back to the v2 JSON profile via the handshake.
WIRE_VERSION = 3

#: the frame schema version stamped on every frame dict.  Still 2: v3
#: adds a codec and a batching profile, not a field change, so the JSON
#: rendering of every frame is exactly what a v2 peer expects.
JSON_WIRE_VERSION = 2

#: oldest frame schema this side still decodes
MIN_WIRE_VERSION = 2

#: first body byte of a binary-codec frame.  0xB3 is not a valid UTF-8
#: lead byte and a JSON object body always starts with ``{`` (0x7B), so
#: one byte of lookahead identifies the codec unambiguously.
BINARY_MAGIC = 0xB3

#: hard cap on one frame's encoded body; protects both sides from a
#: corrupt or hostile length prefix
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")

#: ``err`` codes the client may retry (possibly against another replica)
RETRIABLE = ("read-timeout", "unavailable", "shutting-down")


def _check_version(version: Any) -> None:
    if not isinstance(version, int) or not (
        MIN_WIRE_VERSION <= version <= WIRE_VERSION
    ):
        raise WireError(
            f"unsupported wire version {version!r} (this side speaks "
            f"{MIN_WIRE_VERSION}..{WIRE_VERSION}); upgrade the older peer"
        )


# ----------------------------------------------------------------------
# codecs
# ----------------------------------------------------------------------
class JsonCodec:
    """The WIRE_VERSION 2 fallback codec: one UTF-8 JSON object per frame."""

    name = "json"
    #: highest connection capability this codec's profile provides
    version = JSON_WIRE_VERSION

    def encode(self, frame: Dict[str, Any]) -> bytes:
        """Serialize one frame dict to its length-prefixed wire bytes."""
        body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
        if len(body) > MAX_FRAME_BYTES:
            raise WireError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
        return _LEN.pack(len(body)) + body

    def decode_body(self, body: bytes) -> Dict[str, Any]:
        try:
            frame = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"undecodable frame body: {exc}") from None
        if not isinstance(frame, dict):
            raise WireError(f"frame must be a JSON object, got {type(frame).__name__}")
        _check_version(frame.get("v"))
        if not isinstance(frame.get("t"), str):
            raise WireError("frame missing its type field 't'")
        return frame


class BinaryCodec:
    """The WIRE_VERSION 3 codec: struct header + compact field packing.

    Body layout (after the outer 4-byte length prefix)::

        B  magic       BINARY_MAGIC (0xB3)
        B  version     frame schema version (the frame's ``v`` field)
        B  type tag    index into the frame-type registry; 0 = unknown
                       type, the type string follows as a packed value
        .. fields      the remaining frame fields as one packed map
                       (msgpack-style value encoding, see ``_pack_into``)

    Decoding reconstructs the exact frame dict the JSON codec would have
    produced — both codecs are interchangeable per frame, which is what
    the codec round-trip property tests assert.
    """

    name = "binary"
    version = WIRE_VERSION

    def encode(self, frame: Dict[str, Any]) -> bytes:
        out = bytearray(4)  # length prefix patched in below
        try:
            frame_type = frame["t"]
            version = frame["v"]
        except KeyError as exc:
            raise WireError(f"frame missing required field {exc}") from None
        tag = _FRAME_TAGS.get(frame_type, 0)
        schema = _FRAME_SCHEMAS.get(frame_type)
        values: Optional[list] = None
        if schema is not None and len(frame) == len(schema) + 2:
            try:
                values = [frame[k] for k in schema]
            except KeyError:
                values = None
        try:
            if values is not None:
                out += _HDR.pack(BINARY_MAGIC, version, tag | _SCHEMA_BIT)
                for val in values:
                    _pack_into(out, val)
            else:
                out += _HDR.pack(BINARY_MAGIC, version, tag)
                if tag == 0:
                    _pack_into(out, frame_type)
                _pack_len(out, _T_MAP, len(frame) - 2)
                for key, val in frame.items():
                    if key == "v" or key == "t":
                        continue
                    if type(key) is str:
                        _pack_str(out, key)
                    else:
                        _pack_into(out, key)
                    _pack_into(out, val)
        except struct.error as exc:
            raise WireError(f"unencodable frame header: {exc}") from None
        body_len = len(out) - 4
        if body_len > MAX_FRAME_BYTES:
            raise WireError(f"frame of {body_len} bytes exceeds {MAX_FRAME_BYTES}")
        out[:4] = _LEN.pack(body_len)
        return bytes(out)

    def decode_body(self, body: bytes) -> Dict[str, Any]:
        try:
            magic, version, tag = _HDR.unpack_from(body, 0)
        except struct.error as exc:
            raise WireError(f"truncated binary frame header: {exc}") from None
        if magic != BINARY_MAGIC:
            raise WireError(f"binary frame with bad magic 0x{magic:02x}")
        _check_version(version)
        pos = _HDR.size
        schema_packed = tag & _SCHEMA_BIT
        tag &= _SCHEMA_BIT - 1
        try:
            if tag == 0 and not schema_packed:
                frame_type, pos = _unpack_from(body, pos)
            else:
                frame_type = _FRAME_TYPES[tag]
        except IndexError:
            raise WireError(f"unknown binary frame type tag {tag}") from None
        if not isinstance(frame_type, str):
            raise WireError("binary frame missing its type tag")
        frame: Dict[str, Any] = {"v": version, "t": frame_type}
        try:
            if schema_packed:
                schema = _FRAME_SCHEMAS.get(frame_type)
                if schema is None:
                    raise WireError(
                        f"{frame_type!r} frames have no schema layout"
                    )
                for key in schema:
                    first = body[pos]
                    if first >= _T_FIXINT:
                        frame[key] = first - _T_FIXINT
                        pos += 1
                    else:
                        frame[key], pos = _unpack_from(body, pos)
            else:
                fields, pos = _unpack_from(body, pos)
                if not isinstance(fields, dict):
                    raise WireError("binary frame fields must decode to a map")
                frame.update(fields)
        except (IndexError, struct.error, UnicodeDecodeError) as exc:
            raise WireError(f"undecodable binary frame body: {exc}") from None
        if pos != len(body):
            raise WireError(
                f"binary frame has {len(body) - pos} trailing bytes"
            )
        return frame


#: the two codec singletons; connections reference these, never copies
JSON_CODEC = JsonCodec()
BINARY_CODEC = BinaryCodec()

CODECS = {JSON_CODEC.name: JSON_CODEC, BINARY_CODEC.name: BINARY_CODEC}

_HDR = struct.Struct(">BBB")

#: frame-type registry for the binary header tag.  Append-only: tags are
#: wire constants, so a type must never be removed or renumbered.
_FRAME_TYPES: Tuple[str, ...] = (
    "",  # tag 0: unknown type, spelled out in the body
    "repl",
    "repl.ack",
    "fetch",
    "fetch.ok",
    "fetch.err",
    "link.hello",
    "link.ok",
    "hello",
    "hello.ok",
    "put",
    "put.ok",
    "get",
    "get.ok",
    "ping",
    "ping.ok",
    "kill",
    "kill.ok",
    "err",
)
_FRAME_TAGS: Dict[str, int] = {t: i for i, t in enumerate(_FRAME_TYPES) if i}

#: header tag bit marking a schema-packed (positional) body
_SCHEMA_BIT = 0x80

#: positional field layouts for the hot frame types.  A frame whose key
#: set is exactly ``{"v", "t"} | schema`` packs its field values in this
#: order with no key strings or map header — the "struct-packed frame
#: header" fast path.  Like the type registry these are wire constants:
#: a layout must never be reordered; adding a field to a frame type
#: means dropping its schema entry (the generic map layout takes over,
#: which every decoder also accepts).
_FRAME_SCHEMAS: Dict[str, Tuple[str, ...]] = {
    "repl": ("var", "value", "w", "src", "dst", "meta", "ls"),
    "repl.ack": ("a",),
    "put": ("var", "value"),
    "put.ok": ("w",),
    "get": ("var",),
    "get.ok": ("value", "w", "by"),
    "fetch": ("var", "rq", "sv", "fid", "deps"),
    "fetch.ok": (
        "var", "value", "w", "sv", "rq", "fid", "meta", "applied",
    ),
}

#: positional layouts for the tagged metadata maps of
#: :func:`encode_meta` — a dict whose ``"k"`` names a registered kind
#: and whose key set matches packs as ``_T_SCHEMA`` + id + values, again
#: dropping every key string.  Append-only, same rules as above.
_MAP_SCHEMAS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("ot", ("c", "rm", "log")),
    ("crp", ("c", "log")),
    ("dl", ("e",)),
    ("mc", ("m",)),
    ("vc", ("v",)),
    ("arr", ("v",)),
    ("ivec", ("v",)),
    ("pairs", ("v",)),
)
_MAP_SCHEMA_IDS: Dict[str, Tuple[int, Tuple[str, ...]]] = {
    kind: (i, keys) for i, (kind, keys) in enumerate(_MAP_SCHEMAS)
}


# ----------------------------------------------------------------------
# compact value packing (msgpack-style; used by BinaryCodec)
# ----------------------------------------------------------------------
# One-byte type tags.  Small non-negative ints ride *in* the tag byte
# (0x80 | n, msgpack's fixint idea); lists of plain ints take a flat
# encoding with a per-list element width packed by a single ``struct``
# call — dependency-log entries, clock rows, and apply-snapshot vectors
# all hit that path, which is where the compact codec beats per-element
# dispatch on both bytes and time.
_T_NONE, _T_FALSE, _T_TRUE = 0x00, 0x01, 0x02
_T_INT8, _T_INT32, _T_INT64, _T_BIGINT = 0x10, 0x11, 0x12, 0x13
_T_FLOAT = 0x20
_T_STR, _T_BYTES, _T_LIST, _T_MAP = 0x30, 0x38, 0x40, 0x50
#: flat int vector; the byte after the count is the element width (1/2/4/8)
_T_INTLIST = 0x48
#: schema-packed map: a _MAP_SCHEMAS id byte, then the values in layout
#: order — no key strings on the wire
_T_SCHEMA = 0x60
#: 0x80..0xFF: the value n - 0x80 itself (0..127), no payload
_T_FIXINT = 0x80

_BI = struct.Struct(">Bi")
_BQ = struct.Struct(">Bq")
_BD = struct.Struct(">Bd")
_I32 = struct.Struct(">i")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1

#: element widths for _T_INTLIST: (byte width, struct letter, signed bound)
_INTLIST_WIDTHS = (
    (1, "b", 1 << 7),
    (2, "h", 1 << 15),
    (4, "i", 1 << 31),
    (8, "q", 1 << 63),
)

#: short strings recur constantly on the wire (frame field names,
#: variable names, metadata kind tags) — cache their packed form.  The
#: cache is bounded and only admits short strings, so a hostile stream
#: of unique keys cannot grow it without bound.
_STR_CACHE: Dict[str, bytes] = {}
_STR_CACHE_MAX = 4096


def _pack_len(out: bytearray, tag: int, n: int) -> None:
    """Tagged length prefix: ``tag`` + u8, or ``tag`` + 0xFF + u32."""
    if n < 0xFF:
        out.append(tag)
        out.append(n)
    else:
        out.append(tag)
        out.append(0xFF)
        out += n.to_bytes(4, "big")


def _unpack_len(body: bytes, pos: int) -> Tuple[int, int]:
    n = body[pos]
    pos += 1
    if n == 0xFF:
        n = int.from_bytes(body[pos : pos + 4], "big")
        pos += 4
    return n, pos


def _pack_str(out: bytearray, value: str) -> None:
    cached = _STR_CACHE.get(value)
    if cached is not None:
        out += cached
        return
    raw = value.encode("utf-8")
    n = len(raw)
    if n < 0xFF:
        packed = bytes((_T_STR, n)) + raw
        if n <= 40 and len(_STR_CACHE) < _STR_CACHE_MAX:
            _STR_CACHE[value] = packed
        out += packed
    else:
        _pack_len(out, _T_STR, n)
        out += raw


def _pack_into(out: bytearray, value: Any) -> None:
    kind = type(value)
    if kind is str:
        _pack_str(out, value)
    elif kind is int:
        if 0 <= value <= 127:
            out.append(_T_FIXINT | value)
        elif -128 <= value < 0:
            out.append(_T_INT8)
            out.append(value & 0xFF)
        elif -(2**31) <= value < 2**31:
            out += _BI.pack(_T_INT32, value)
        elif _I64_MIN <= value <= _I64_MAX:
            out += _BQ.pack(_T_INT64, value)
        else:
            raw = value.to_bytes(
                (value.bit_length() + 8) // 8, "big", signed=True
            )
            _pack_len(out, _T_BIGINT, len(raw))
            out += raw
    elif value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif kind is dict:
        k = value.get("k")
        if type(k) is str:
            ms = _MAP_SCHEMA_IDS.get(k)
            if ms is not None and len(value) == len(ms[1]) + 1:
                try:
                    vals = [value[key] for key in ms[1]]
                except KeyError:
                    vals = None
                if vals is not None:
                    out.append(_T_SCHEMA)
                    out.append(ms[0])
                    for v in vals:
                        _pack_into(out, v)
                    return
        _pack_len(out, _T_MAP, len(value))
        for k, v in value.items():
            if type(k) is str:
                _pack_str(out, k)
            else:
                _pack_into(out, k)
            _pack_into(out, v)
    elif kind is list or kind is tuple:
        n = len(value)
        if n >= 4:
            # flat int vectors (clock rows, apply snapshots, long masks)
            # pack in ONE struct call at the narrowest element width;
            # shorter lists are cheaper per-element below
            lo = hi = 0
            for x in value:
                if type(x) is not int:
                    break
                if x < lo:
                    lo = x
                elif x > hi:
                    hi = x
            else:
                if lo >= _I64_MIN and hi <= _I64_MAX:
                    for width, letter, bound in _INTLIST_WIDTHS:
                        if -bound <= lo and hi < bound:
                            _pack_len(out, _T_INTLIST, n)
                            out.append(width)
                            out += struct.pack(f">{n}{letter}", *value)
                            return
        _pack_len(out, _T_LIST, n)
        for item in value:
            if type(item) is int and 0 <= item <= 127:
                out.append(_T_FIXINT | item)
            else:
                _pack_into(out, item)
    elif kind is float:
        out += _BD.pack(_T_FLOAT, value)
    elif kind is bytes:
        _pack_len(out, _T_BYTES, len(value))
        out += value
    elif isinstance(value, bool):
        out.append(_T_TRUE if value else _T_FALSE)
    elif isinstance(value, (int, np.integer)):
        # numpy scalars and int subclasses degrade to plain ints,
        # mirroring what json.dumps does for them
        _pack_into(out, int(value))
    elif isinstance(value, float):
        out += _BD.pack(_T_FLOAT, float(value))
    elif isinstance(value, (str, list, tuple, dict)):
        raise WireError(
            f"binary codec cannot encode {type(value).__name__} subclasses"
        )
    else:
        raise WireError(
            f"binary codec cannot encode {type(value).__name__} values"
        )


#: struct decoders per _T_INTLIST width code
_INTLIST_DECODE = {1: "b", 2: "h", 4: "i", 8: "q"}


def _unpack_from(body: bytes, pos: int) -> Tuple[Any, int]:
    tag = body[pos]
    pos += 1
    if tag >= _T_FIXINT:
        return tag - _T_FIXINT, pos
    if tag == _T_STR:
        n, pos = _unpack_len(body, pos)
        return body[pos : pos + n].decode("utf-8"), pos + n
    if tag == _T_INT8:
        b = body[pos]
        return b - 256 if b >= 128 else b, pos + 1
    if tag == _T_INT32:
        return _I32.unpack_from(body, pos)[0], pos + 4
    if tag == _T_INT64:
        return _I64.unpack_from(body, pos)[0], pos + 8
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INTLIST:
        n, pos = _unpack_len(body, pos)
        width = body[pos]
        pos += 1
        letter = _INTLIST_DECODE.get(width)
        if letter is None:
            raise WireError(f"unknown int-vector width {width}")
        return list(struct.unpack_from(f">{n}{letter}", body, pos)), pos + n * width
    if tag == _T_LIST:
        n, pos = _unpack_len(body, pos)
        items = []
        append = items.append
        for _ in range(n):
            t2 = body[pos]
            if t2 >= _T_FIXINT:
                append(t2 - _T_FIXINT)
                pos += 1
            else:
                item, pos = _unpack_from(body, pos)
                append(item)
        return items, pos
    if tag == _T_SCHEMA:
        sid = body[pos]
        pos += 1
        if sid >= len(_MAP_SCHEMAS):
            raise WireError(f"unknown map schema id {sid}")
        kind_name, keys = _MAP_SCHEMAS[sid]
        mapping = {"k": kind_name}
        for key in keys:
            t2 = body[pos]
            if t2 >= _T_FIXINT:
                mapping[key] = t2 - _T_FIXINT
                pos += 1
            else:
                mapping[key], pos = _unpack_from(body, pos)
        return mapping, pos
    if tag == _T_MAP:
        n, pos = _unpack_len(body, pos)
        mapping = {}
        for _ in range(n):
            key, pos = _unpack_from(body, pos)
            val, pos = _unpack_from(body, pos)
            mapping[key] = val
        return mapping, pos
    if tag == _T_FLOAT:
        return _F64.unpack_from(body, pos)[0], pos + 8
    if tag == _T_BYTES:
        n, pos = _unpack_len(body, pos)
        return bytes(body[pos : pos + n]), pos + n
    if tag == _T_BIGINT:
        n, pos = _unpack_len(body, pos)
        return int.from_bytes(body[pos : pos + n], "big", signed=True), pos + n
    raise WireError(f"unknown binary value tag 0x{tag:02x}")


# ----------------------------------------------------------------------
# framing (codec-agnostic module API)
# ----------------------------------------------------------------------
def encode_frame(frame: Dict[str, Any], codec: Any = JSON_CODEC) -> bytes:
    """Serialize one frame dict to its length-prefixed wire bytes."""
    return codec.encode(frame)


def decode_body(body: bytes) -> Dict[str, Any]:
    """Decode one frame body (the bytes after the length prefix).

    Sniffs the codec from the first byte: :data:`BINARY_MAGIC` marks the
    binary codec, anything else is JSON.  A WIRE_VERSION 2 peer's JSON
    frames therefore decode unchanged; binary bodies would be rejected
    by a v2 peer's JSON-only decoder, which is why the binary codec is
    only ever *sent* after a successful ``cv >= 3`` handshake.
    """
    if not body:
        raise WireError("empty frame body")
    if body[0] == BINARY_MAGIC:
        return BINARY_CODEC.decode_body(body)
    return JSON_CODEC.decode_body(body)


def frame_length(prefix: bytes) -> int:
    """Parse and validate the 4-byte length prefix."""
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    return length


def make_frame(frame_type: str, **fields: Any) -> Dict[str, Any]:
    """A frame dict of ``frame_type`` with the current frame schema
    version (v2 — see :data:`JSON_WIRE_VERSION`; the v3 capability is a
    per-connection negotiation, not a frame field)."""
    frame: Dict[str, Any] = {"v": JSON_WIRE_VERSION, "t": frame_type}
    frame.update(fields)
    return frame


def err_frame(code: str, message: str) -> Dict[str, Any]:
    return make_frame("err", code=code, msg=message)


# ----------------------------------------------------------------------
# small-value codecs
# ----------------------------------------------------------------------
def encode_write_id(wid: Optional[WriteId]) -> Optional[list]:
    return None if wid is None else [wid.site, wid.seq]


def decode_write_id(value: Any) -> Optional[WriteId]:
    return None if value is None else WriteId(int(value[0]), int(value[1]))


# ----------------------------------------------------------------------
# protocol metadata codec (tagged by "k")
# ----------------------------------------------------------------------
def encode_meta(meta: Any) -> Any:
    """Encode one piggybacked metadata object to its JSON shape."""
    if meta is None:
        return None
    if isinstance(meta, OptTrackMeta):
        return {
            "k": "ot",
            "c": meta.clock,
            "rm": meta.replicas_mask,
            "log": _encode_deplog(meta.log),
        }
    if isinstance(meta, CrpMeta):
        log: List[int] = []
        for s, c in sorted(meta.log.items()):
            log.append(int(s))
            log.append(int(c))
        return {"k": "crp", "c": meta.clock, "log": log}
    if isinstance(meta, DepLog):
        return {"k": "dl", "e": _encode_deplog(meta)}
    if isinstance(meta, MatrixClock):
        # flat row-major (the matrix is square): one contiguous int list
        # packs as a single binary intlist instead of n nested rows
        return {"k": "mc", "m": meta.m.ravel().tolist()}
    if isinstance(meta, VectorClock):
        return {"k": "vc", "v": meta.v.tolist()}
    if isinstance(meta, np.ndarray):
        return {"k": "arr", "v": [int(x) for x in meta]}
    if isinstance(meta, tuple):
        if all(isinstance(x, (int, np.integer)) for x in meta):
            # flat clock vectors, e.g. opt-track's apply-progress snapshot
            return {"k": "ivec", "v": [int(x) for x in meta]}
        # opt-track dependency summaries: tuples of (sender, clock) pairs,
        # flattened for the same single-intlist reason as the dep log
        flat: List[int] = []
        for z, c in meta:
            flat.append(int(z))
            flat.append(int(c))
        return {"k": "pairs", "v": flat}
    raise WireError(f"unserializable protocol metadata {type(meta).__name__}")


def decode_meta(data: Any) -> Any:
    """Decode the output of :func:`encode_meta` back to protocol objects."""
    if data is None:
        return None
    if not isinstance(data, dict) or "k" not in data:
        raise WireError(f"malformed metadata payload {data!r}")
    kind = data["k"]
    if kind == "ot":
        return OptTrackMeta(
            int(data["c"]), int(data["rm"]), _decode_deplog(data["log"])
        )
    if kind == "crp":
        log = data["log"]
        return CrpMeta(
            int(data["c"]),
            {int(log[i]): int(log[i + 1]) for i in range(0, len(log), 2)},
        )
    if kind == "dl":
        return _decode_deplog(data["e"])
    if kind == "mc":
        flat = np.array(data["m"], dtype=np.int64)
        n = int(np.sqrt(flat.size))
        return MatrixClock(n, flat.reshape(n, n))
    if kind == "vc":
        v = np.array(data["v"], dtype=np.int64)
        return VectorClock(v.shape[0], v)
    if kind == "arr":
        return np.array(data["v"], dtype=np.int64)
    if kind == "ivec":
        return tuple(int(x) for x in data["v"])
    if kind == "pairs":
        v = data["v"]
        return tuple((int(v[i]), int(v[i + 1])) for i in range(0, len(v), 2))
    raise WireError(f"unknown metadata kind {kind!r}")


def _encode_deplog(log: DepLog) -> List[int]:
    """Flat ``[sender, clock, dests, ...]`` triples: a single contiguous
    int list packs as one binary intlist (and is shorter as JSON too)."""
    flat: List[int] = []
    for (s, c), d in sorted(log.entries.items()):
        flat.append(int(s))
        flat.append(int(c))
        flat.append(int(d))
    return flat


def _decode_deplog(entries: Any) -> DepLog:
    return DepLog(
        {
            (int(entries[i]), int(entries[i + 1])): int(entries[i + 2])
            for i in range(0, len(entries), 3)
        }
    )


# ----------------------------------------------------------------------
# message codecs
# ----------------------------------------------------------------------
def encode_update(msg: UpdateMessage, link_seq: int) -> Dict[str, Any]:
    """A REPLICATE frame for one :class:`UpdateMessage`.

    ``link_seq`` is the per-peer-link sequence number used for duplicate
    suppression across reconnect resends.
    """
    return make_frame(
        "repl",
        var=msg.var,
        value=msg.value,
        w=encode_write_id(msg.write_id),
        src=msg.sender,
        dst=msg.dest,
        meta=encode_meta(msg.meta),
        ls=link_seq,
    )


def decode_update(frame: Dict[str, Any]) -> UpdateMessage:
    try:
        wid = decode_write_id(frame["w"])
        if wid is None:
            raise WireError("repl frame without a write id")
        return UpdateMessage(
            var=frame["var"],
            value=frame["value"],
            write_id=wid,
            sender=int(frame["src"]),
            dest=int(frame["dst"]),
            meta=decode_meta(frame["meta"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed repl frame: {exc}") from None


def encode_fetch_request(req: FetchRequest) -> Dict[str, Any]:
    return make_frame(
        "fetch",
        var=req.var,
        rq=req.requester,
        sv=req.server,
        fid=req.fetch_id,
        deps=encode_meta(req.deps),
    )


def decode_fetch_request(frame: Dict[str, Any]) -> FetchRequest:
    try:
        return FetchRequest(
            var=frame["var"],
            requester=int(frame["rq"]),
            server=int(frame["sv"]),
            fetch_id=int(frame["fid"]),
            deps=decode_meta(frame["deps"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed fetch frame: {exc}") from None


def encode_fetch_reply(reply: FetchReply) -> Dict[str, Any]:
    return make_frame(
        "fetch.ok",
        var=reply.var,
        value=reply.value,
        w=encode_write_id(reply.write_id),
        sv=reply.server,
        rq=reply.requester,
        fid=reply.fetch_id,
        meta=encode_meta(reply.meta),
        applied=encode_meta(reply.applied),
    )


def decode_fetch_reply(frame: Dict[str, Any]) -> FetchReply:
    try:
        return FetchReply(
            var=frame["var"],
            value=frame["value"],
            write_id=decode_write_id(frame["w"]),
            server=int(frame["sv"]),
            requester=int(frame["rq"]),
            fetch_id=int(frame["fid"]),
            meta=decode_meta(frame["meta"]),
            applied=decode_meta(frame["applied"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed fetch.ok frame: {exc}") from None


__all__ = [
    "WIRE_VERSION",
    "JSON_WIRE_VERSION",
    "MIN_WIRE_VERSION",
    "BINARY_MAGIC",
    "MAX_FRAME_BYTES",
    "RETRIABLE",
    "JsonCodec",
    "BinaryCodec",
    "JSON_CODEC",
    "BINARY_CODEC",
    "CODECS",
    "encode_frame",
    "decode_body",
    "frame_length",
    "make_frame",
    "err_frame",
    "encode_write_id",
    "decode_write_id",
    "encode_meta",
    "decode_meta",
    "encode_update",
    "decode_update",
    "encode_fetch_request",
    "decode_fetch_request",
    "encode_fetch_reply",
    "decode_fetch_reply",
]
