"""Client library for the networked KV service.

:class:`KVClient` is one client *session*: it prefers a single **home
site** (session causality lives in that site's protocol state) and speaks
the wire protocol of :mod:`repro.service.wire` over any
:class:`~repro.service.transport.Transport`.

Failure handling, in order:

* **connection pooling** — one cached connection per site, rebuilt lazily
  after any failure;
* **per-request timeout** — a site that accepts the connection but never
  answers counts as unreachable;
* **bounded exponential backoff with jitter** between attempts (seeded
  ``numpy`` generator, so loopback tests are reproducible);
* **graceful degradation** — when the home site is unreachable (or
  answers with a retriable error), reads fail over to the other replicas
  of the key in placement order (:mod:`repro.store.placement`), writes to
  any replica of the key.  A degraded read is served from the surviving
  replica's own causally consistent state; what is traded away is session
  continuity with the dead home site, which is the paper's Section V
  availability argument.

Only after the whole candidate list fails ``max_rounds`` times does a
request surface :class:`~repro.errors.ServiceUnavailableError`.  Counters
and latency histograms go to an optional
:class:`~repro.obs.registry.MetricsRegistry`.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import ServiceUnavailableError, WireError
from repro.service import wire
from repro.service.transport import Connection, Transport
from repro.store.placement import Placement
from repro.types import SiteId, VarId, WriteId


class KVClient:
    """One client session against the service cluster (see module doc)."""

    def __init__(
        self,
        addresses: Dict[SiteId, str],
        placement: Placement,
        transport: Transport,
        *,
        home: SiteId = 0,
        timeout: float = 2.0,
        max_rounds: int = 3,
        backoff_base: float = 0.01,
        backoff_cap: float = 0.25,
        metrics: Any = None,
        seed: int = 0,
        codec: str = "delta",
    ) -> None:
        if codec not in wire.PROFILE_CAPS:
            raise ValueError(
                f"unknown wire profile {codec!r}; choose from "
                f"{sorted(wire.PROFILE_CAPS)}"
            )
        self.addresses = dict(addresses)
        self.placement = placement
        self.transport = transport
        #: preferred wire profile: ``"binary"`` and ``"delta"`` send a
        #: ``hello`` negotiation frame on every new connection and
        #: upgrade when the server agrees (``"delta"`` additionally
        #: learns the server's intern table and sends interned var
        #: ids); ``"json"`` skips the hello entirely (pure v2 client)
        self.codec_name = codec
        self.wire_caps = wire.profile_caps(codec)
        #: per-site intern table from the last ``hello.ok`` (cv >= 4)
        self._itabs: Dict[SiteId, wire.InternTable] = {}
        #: sites whose last ``hello.ok`` echoed the ``sx`` stats
        #: capability — :meth:`stats` works against exactly these
        self._stats_sites: Set[SiteId] = set()
        self.home = home
        self.timeout = timeout
        self.max_rounds = max_rounds
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.metrics = metrics
        self._rng = np.random.default_rng(seed)
        self._conns: Dict[SiteId, Connection] = {}
        #: sites that served a request / failed one, for tests & CLI
        self.served_by: Dict[SiteId, int] = {}
        self.failovers = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    async def put(self, var: VarId, value: Any) -> WriteId:
        """Write ``var``; returns the id of the write."""
        frame = await self._request(
            wire.make_frame("put", var=var, value=value), self._candidates(var)
        )
        wid = wire.decode_write_id(frame["w"])
        assert wid is not None
        return wid

    async def get(self, var: VarId) -> Tuple[Any, Optional[WriteId], SiteId]:
        """Read ``var``; returns ``(value, write_id, served_by_site)``."""
        frame = await self._request(
            wire.make_frame("get", var=var), self._candidates(var)
        )
        return frame["value"], wire.decode_write_id(frame["w"]), int(frame["by"])

    async def ping(self, site: SiteId) -> bool:
        try:
            frame = await self._roundtrip(site, wire.make_frame("ping"))
        except (ConnectionError, OSError, asyncio.TimeoutError, WireError):
            return False
        return frame.get("t") == "ping.ok"

    async def kill(self, site: SiteId) -> bool:
        """Chaos helper: ask ``site`` to shut itself down."""
        try:
            frame = await self._roundtrip(site, wire.make_frame("kill"))
        except (ConnectionError, OSError, asyncio.TimeoutError):
            return False
        return frame.get("t") == "kill.ok"

    async def stats(self, site: Optional[SiteId] = None) -> Dict[str, Any]:
        """One ``sys.stats`` snapshot from ``site`` (default: home).

        Works against any site whose ``hello.ok`` echoed the ``sx``
        capability — that is orthogonal to the agreed wire version, so
        a JSON-pinned server still answers.  Raises
        :class:`ServiceUnavailableError` when the site refuses (an old
        server, or a connection that never negotiated); connection
        errors propagate for the caller's own failover policy."""
        target = self.home if site is None else site
        frame = await self._roundtrip(target, wire.make_frame("sys.stats"))
        if frame.get("t") != "sys.stats.ok":
            raise ServiceUnavailableError(
                f"site {target} refused sys.stats: "
                f"{frame.get('code')} ({frame.get('msg')})"
            )
        return frame["stats"]

    async def close(self) -> None:
        # take-then-clear: a request racing close() must not slip a new
        # pooled connection in between the closes and the clear
        conns = list(self._conns.values())
        self._conns.clear()
        for conn in conns:
            await conn.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _candidates(self, var: VarId) -> List[SiteId]:
        """Sites to try, in order: home first, then the replicas of the
        key.  Every candidate holds (or can serve) the key; the home site
        additionally holds this session's causal context."""
        order: List[SiteId] = [self.home]
        for site in self.placement.get(var, ()):
            if site not in order:
                order.append(site)
        return order

    def _metric(self, name: str, **labels: Any) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, **labels).inc()

    async def _request(
        self, frame: Dict[str, Any], candidates: List[SiteId]
    ) -> Dict[str, Any]:
        """Send ``frame`` to the first candidate that answers non-retriably.

        Walks the candidate list ``max_rounds`` times with exponential
        backoff between attempts; raises ``ServiceUnavailableError`` when
        every attempt failed."""
        op = frame["t"]
        attempt = 0
        last_error = "no candidate sites"
        for round_no in range(self.max_rounds):
            for i, site in enumerate(candidates):
                if attempt > 0:
                    await asyncio.sleep(self._backoff(attempt))
                attempt += 1
                try:
                    reply = await self._roundtrip(site, frame)
                except (ConnectionError, OSError, asyncio.TimeoutError, WireError) as exc:
                    last_error = f"site {site}: {type(exc).__name__}: {exc}"
                    self._metric("client_attempt_failures_total", op=op, site=site)
                    if i == 0 and site == self.home:
                        self.failovers += 1
                        self._metric("client_failovers_total", op=op)
                    continue
                if reply["t"] == "err":
                    last_error = f"site {site}: {reply.get('code')}: {reply.get('msg')}"
                    self._metric(
                        "client_request_errors_total", op=op, code=reply.get("code")
                    )
                    if reply.get("code") in wire.RETRIABLE:
                        continue
                    raise ServiceUnavailableError(last_error)
                self.served_by[site] = self.served_by.get(site, 0) + 1
                return reply
        self._metric("client_exhausted_total", op=op)
        raise ServiceUnavailableError(
            f"{op} failed on every candidate {candidates} after {attempt} "
            f"attempts; last error: {last_error}"
        )

    def _backoff(self, attempt: int) -> float:
        base = min(self.backoff_base * (2.0 ** (attempt - 1)), self.backoff_cap)
        return base * (0.5 + self._rng.uniform(0.0, 0.5))

    def _intern(self, site: SiteId, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Substitute the interned id for a ``var`` name when this
        site's connection negotiated a table (shallow copy — the caller
        reuses the original frame across failover candidates)."""
        itab = self._itabs.get(site)
        if itab is None:
            return frame
        var = frame.get("var")
        if type(var) is not str:
            return frame
        interned = itab.encode_var(var)
        if interned is var:
            return frame
        out = dict(frame)
        out["var"] = interned
        return out

    async def _roundtrip(self, site: SiteId, frame: Dict[str, Any]) -> Dict[str, Any]:
        conn = await self._conn(site)
        try:
            await conn.send(self._intern(site, frame))
            # asyncio.timeout, not wait_for: no extra Task per request
            async with asyncio.timeout(self.timeout):
                reply = await conn.recv()
        except (ConnectionError, OSError, asyncio.TimeoutError, WireError):
            await self._drop_conn(site)
            raise
        if reply is None:
            await self._drop_conn(site)
            raise ConnectionResetError(f"site {site} closed the connection")
        return reply

    async def _conn(self, site: SiteId) -> Connection:
        conn = self._conns.get(site)
        if conn is None:
            address = self.addresses[site]
            conn = await asyncio.wait_for(
                self.transport.connect(address), self.timeout
            )
            if self.wire_caps >= wire.BATCH_WIRE_VERSION:
                await self._negotiate(site, conn)
            racer = self._conns.get(site)
            if racer is not None:
                # a concurrent request for this site connected while we
                # negotiated; keep its pooled connection, drop ours
                await conn.close()
                return racer
            self._conns[site] = conn
        return conn

    async def _negotiate(self, site: SiteId, conn: Connection) -> None:
        """Offer our capability on a fresh connection.  The hello always
        travels JSON; a v2 server answers ``err bad-frame`` (it has no
        ``hello`` handler), which downgrades this connection to JSON —
        interop costs one extra round trip at connect, nothing after.
        A cv ≥ 4 agreement also delivers the server's intern table."""
        try:
            await conn.send(
                wire.make_frame(
                    "hello", cv=self.wire_caps, sx=wire.STATS_CAPABILITY
                )
            )
            async with asyncio.timeout(self.timeout):
                reply = await conn.recv()
        except (ConnectionError, OSError, asyncio.TimeoutError, WireError):
            await conn.close()
            raise
        if reply is None:
            await conn.close()
            raise ConnectionResetError(
                f"site {site} closed the connection during codec negotiation"
            )
        if int(reply.get("sx", 0)) >= wire.STATS_CAPABILITY:
            self._stats_sites.add(site)
        else:
            self._stats_sites.discard(site)
        agreed = min(
            int(reply.get("cv", wire.JSON_WIRE_VERSION)), self.wire_caps
        )
        if reply.get("t") == "hello.ok" and agreed >= wire.BATCH_WIRE_VERSION:
            conn.negotiate(wire.codec_for(agreed), agreed)
            if agreed >= wire.DELTA_WIRE_VERSION:
                self._itabs[site] = wire.InternTable(reply.get("itab", ()))
                self._metric("client_wire_negotiations_total", codec="delta")
            else:
                self._itabs.pop(site, None)
                self._metric("client_wire_negotiations_total", codec="binary")
        else:
            self._itabs.pop(site, None)
            self._metric("client_wire_negotiations_total", codec="json")

    async def _drop_conn(self, site: SiteId) -> None:
        conn = self._conns.pop(site, None)
        if conn is not None:
            await conn.close()


__all__ = ["KVClient"]
