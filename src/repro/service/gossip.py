"""Gossip anti-entropy: watermark digests and own-origin range repair.

The durability subsystem's companion (docs/durability.md has the full
walkthrough).  Each site periodically sends one peer a ``sys.digest``
frame carrying its per-origin applied watermarks — the same stable
timestamps that bound its snapshots (*Global Stabilization for Causally
Consistent Partial Replication*, Xiang & Vaidya).  The digest rides the
existing peer link as a control frame, gated on the additive ``gx``
capability bit, so a pre-durability peer never sees one.

A digest from ``src`` triggers two repairs, both **own-origin only**:

* **push** — the receiver re-ships its own writes destined to ``src``
  above ``src``'s watermark for this origin (skipping anything already
  queued or acked on the link).  Third-party copies are never forwarded:
  under partial replication each stored copy was per-destination pruned
  by the sender, so only the origin still holds a copy whose piggybacked
  metadata is sound for an arbitrary destination.
* **pull** — if ``src``'s digest shows ``src`` itself ahead of what the
  receiver has applied from it, the receiver asks for the gap with a
  ``sys.range`` control frame on its own link back to ``src``; ``src``
  answers by re-shipping its own writes destined to the requester inside
  ``(lo, hi]``.

Catch-up cost is therefore proportional to the watermark gap, not the
history: everything below the watermark is never re-sent, and a freshly
recovered site converges one digest round after each origin learns its
watermarks.  Re-shipped updates overlap normal delivery safely — the
server's origin-level duplicate guard (``seq <= _origin_applied``, or
already parked) acks and drops any copy its state already covers.

Every control frame is answered with ``sys.ctrl.ok`` only after its
repair effects are enqueued, and unacked control frames count toward the
link backlog — that is what keeps :meth:`ServiceCluster.quiesce` sound
with the gossip task running.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.service import wire

__all__ = ["digest_frame", "handle_digest", "handle_range"]


def digest_frame(server: Any) -> Dict[str, Any]:
    """This site's per-origin applied watermarks as a ``sys.digest``."""
    flat = []
    for origin in sorted(server._origin_applied):
        flat.append(int(origin))
        flat.append(int(server._origin_applied[origin]))
    return wire.make_frame("sys.digest", src=server.site, d=flat)


def _ship_own(server: Any, link: Any, clock: int, dest: int) -> int:
    """Enqueue this site's own write ``clock`` to ``dest`` if the link is
    not already carrying it; returns the number of frames enqueued."""
    if clock <= link.acked_seq or clock in link._queued_seqs:
        return 0
    shipped = 0
    for msg in server._own_log.get(clock, ()):
        if msg.dest == dest:
            link.enqueue_update(msg)
            shipped += 1
    return shipped


def handle_digest(server: Any, frame: Dict[str, Any]) -> int:
    """Repair against a peer's watermark digest; returns frames shipped.

    Synchronous (single-writer): every repair effect is enqueued before
    the caller acks the digest, so the link backlog accounting never has
    a window where gossip work is in flight but invisible to quiesce.
    """
    src = int(frame["src"])
    flat = frame.get("d") or ()
    theirs: Dict[int, int] = {}
    it = iter(flat)
    for origin, wm in zip(it, it):
        theirs[int(origin)] = int(wm)

    shipped = 0
    # push: our own writes destined to the peer, above its watermark
    if server._own_log:
        link = server._link(src)
        floor = theirs.get(int(server.site), 0)
        for clock in sorted(server._own_log):
            if clock > floor:
                shipped += _ship_own(server, link, clock, src)

    # pull: the peer's own writes we have not applied yet — ask the
    # origin itself for the gap (third-origin gaps heal through each
    # origin's own gossip rounds, never through forwarded copies)
    their_own = theirs.get(src, 0)
    mine_of_them = int(server._origin_applied.get(src, 0))
    if their_own > mine_of_them:
        server._link(src).enqueue_ctrl(
            wire.make_frame(
                "sys.range",
                origin=src,
                rq=server.site,
                lo=mine_of_them,
                hi=their_own,
            )
        )
    return shipped


def handle_range(server: Any, frame: Dict[str, Any]) -> int:
    """Serve a peer's ``sys.range`` request from our own-write log."""
    if int(frame["origin"]) != int(server.site):
        # only the origin serves its own ranges; a mis-addressed request
        # is acked and dropped (the requester's next digest retries)
        return 0
    rq = int(frame["rq"])
    lo = int(frame["lo"])
    hi = int(frame["hi"])
    link = server._link(rq)
    shipped = 0
    for clock in sorted(server._own_log):
        if lo < clock <= hi:
            shipped += _ship_own(server, link, clock, rq)
    return shipped
