"""Workload generation: tunable write-rate mixes, Zipf popularity,
locality scenarios, and trace record/replay."""

from repro.workload.generator import (
    WorkloadConfig,
    generate,
    measured_write_rate,
    op_counts,
)
from repro.workload.scenarios import (
    SCENARIOS,
    hdfs_like,
    read_intensive,
    social_network,
    write_intensive,
)
from repro.workload.traces import load_trace, save_trace
from repro.workload.ycsb import WORKLOADS as YCSB_WORKLOADS
from repro.workload.ycsb import ycsb

__all__ = [
    "SCENARIOS",
    "WorkloadConfig",
    "YCSB_WORKLOADS",
    "generate",
    "hdfs_like",
    "load_trace",
    "measured_write_rate",
    "op_counts",
    "read_intensive",
    "save_trace",
    "social_network",
    "write_intensive",
    "ycsb",
]
