"""Workload generation.

Produces per-site operation scripts (``list[list[Operation]]``) with the
knobs the paper's evaluation turns:

* ``write_rate`` — the paper's ``w_rate = w / (w + r)``, the x-axis of
  Figure 4;
* variable popularity — uniform or Zipf (hot keys, like social-network
  objects);
* ``locality`` — probability that an operation targets a variable
  replicated at the issuing site ("readers tend to read variables from the
  local replica", Section V); 0 means no bias.

Values are self-describing strings (``"v<site>.<k>"``) so failures read
well; the checker identifies writes by :class:`repro.types.WriteId`, not by
value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.store.placement import Placement, vars_at
from repro.types import Operation, VarId


@dataclass
class WorkloadConfig:
    """Knobs for :func:`generate`."""

    n_sites: int
    ops_per_site: int = 100
    write_rate: float = 0.3
    variables: Optional[Sequence[VarId]] = None
    #: "uniform" or "zipf"
    key_distribution: str = "uniform"
    zipf_s: float = 1.1
    #: probability of targeting a locally replicated variable (requires
    #: ``placement``); applies to reads and writes alike
    locality: float = 0.0
    placement: Optional[Placement] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_sites <= 0:
            raise ConfigurationError(f"need n >= 1, got {self.n_sites}")
        if self.ops_per_site < 0:
            raise ConfigurationError("ops_per_site must be >= 0")
        if not (0.0 <= self.write_rate <= 1.0):
            raise ConfigurationError(f"write_rate must be in [0,1], got {self.write_rate}")
        if not (0.0 <= self.locality <= 1.0):
            raise ConfigurationError(f"locality must be in [0,1], got {self.locality}")
        if self.locality > 0 and self.placement is None:
            raise ConfigurationError("locality bias requires a placement")
        if self.key_distribution not in ("uniform", "zipf"):
            raise ConfigurationError(
                f"unknown key distribution {self.key_distribution!r}"
            )


def _zipf_pmf(q: int, s: float) -> np.ndarray:
    ranks = np.arange(1, q + 1, dtype=float)
    pmf = ranks**-s
    return pmf / pmf.sum()


def generate(config: WorkloadConfig) -> List[List[Operation]]:
    """Generate one operation script per site (deterministic in the seed)."""
    if config.variables is not None:
        variables = list(config.variables)
    elif config.placement is not None:
        variables = list(config.placement)
    else:
        raise ConfigurationError("need variables or a placement")
    if not variables:
        raise ConfigurationError("empty variable set")

    rng = np.random.default_rng(config.seed)
    q = len(variables)
    if config.key_distribution == "zipf":
        pmf = _zipf_pmf(q, config.zipf_s)
    else:
        pmf = None

    local_vars: List[List[VarId]] = []
    if config.locality > 0:
        assert config.placement is not None
        for site in range(config.n_sites):
            lv = vars_at(config.placement, site)
            local_vars.append(lv)

    scripts: List[List[Operation]] = []
    for site in range(config.n_sites):
        ops: List[Operation] = []
        counter = 0
        for _ in range(config.ops_per_site):
            if (
                config.locality > 0
                and local_vars[site]
                and rng.random() < config.locality
            ):
                var = local_vars[site][int(rng.integers(len(local_vars[site])))]
            elif pmf is not None:
                var = variables[int(rng.choice(q, p=pmf))]
            else:
                var = variables[int(rng.integers(q))]
            if rng.random() < config.write_rate:
                counter += 1
                ops.append(Operation.write(var, f"v{site}.{counter}"))
            else:
                ops.append(Operation.read(var))
        scripts.append(ops)
    return scripts


def op_counts(workload: Sequence[Sequence[Operation]]) -> Tuple[int, int]:
    """(writes, reads) totals across all scripts."""
    w = sum(1 for script in workload for op in script if op.kind.value == "write")
    r = sum(len(script) for script in workload) - w
    return w, r


def measured_write_rate(workload: Sequence[Sequence[Operation]]) -> float:
    """The realized ``w / (w + r)`` of a generated workload."""
    w, r = op_counts(workload)
    total = w + r
    return w / total if total else 0.0
