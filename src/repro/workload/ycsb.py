"""YCSB-style workload presets.

The Yahoo! Cloud Serving Benchmark core workloads, adapted to the paper's
read/write shared-memory model (no scans or read-modify-write: a YCSB
"update" is a write, an RMW becomes a read followed by a write of the same
key — which is exactly the operation pair that exercises causal tracking
hardest).

========  =========================  ==========================  =========
workload  YCSB meaning               mix                          popularity
========  =========================  ==========================  =========
``a``     update heavy               50% read / 50% write         zipf
``b``     read mostly                95% read / 5% write          zipf
``c``     read only                  100% read                    zipf
``d``     read latest                95% read / 5% insert         latest
``f``     read-modify-write          50% read / 50% RMW pairs     zipf
``w``     write only (extension)     100% write                   zipf
========  =========================  ==========================  =========

Workload ``d``'s "latest" distribution is modeled by biasing reads toward
the most recently written keys; ``e`` (scans) has no analogue in a
register-based shared memory and is omitted.  ``w`` is not a YCSB core
workload: it is the metadata-dominated regime (every op ships a
dependency log) used by the service benchmark's metadata-bound cell.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.types import Operation, VarId

Workload = List[List[Operation]]

WORKLOADS = ("a", "b", "c", "d", "f", "w")

_MIX: Dict[str, float] = {
    "a": 0.5,
    "b": 0.05,
    "c": 0.0,
    "d": 0.05,
    "f": 0.5,
    "w": 1.0,
}


def _zipf_pmf(q: int, s: float = 0.99) -> np.ndarray:
    ranks = np.arange(1, q + 1, dtype=float)
    pmf = ranks**-s
    return pmf / pmf.sum()


def ycsb(
    workload: str,
    n_sites: int,
    variables: Sequence[VarId],
    ops_per_site: int = 100,
    zipf_s: float = 0.99,
    latest_window: int = 8,
    seed: int = 0,
    value_size: int = 0,
) -> Workload:
    """Generate one of the YCSB core workloads (see module docstring).

    ``value_size`` pads every written value to at least that many bytes
    (YCSB's record size: the standard core workloads write ~1 KB rows;
    the default 0 keeps the short self-describing values, handy in test
    assertions).  Values stay unique per (site, counter) either way.
    """
    if workload not in WORKLOADS:
        raise ConfigurationError(
            f"unknown YCSB workload {workload!r}; choose from {WORKLOADS}"
        )
    if n_sites <= 0:
        raise ConfigurationError(f"need n_sites >= 1, got {n_sites}")
    variables = list(variables)
    if not variables:
        raise ConfigurationError("need at least one variable")

    rng = np.random.default_rng(seed)
    q = len(variables)
    pmf = _zipf_pmf(q, zipf_s)
    write_rate = _MIX[workload]

    def value(site: int, counter: int, prefix: str = "v") -> str:
        v = f"{prefix}{site}.{counter}"
        return v.ljust(value_size, "x") if value_size else v

    #: shared recency ring for workload d ("read latest"); approximates
    #: YCSB's latest distribution with the keys this *generator* wrote
    #: most recently
    recent: List[VarId] = []

    scripts: Workload = []
    for site in range(n_sites):
        ops: List[Operation] = []
        counter = 0
        while len(ops) < ops_per_site:
            var = variables[int(rng.choice(q, p=pmf))]
            if workload == "f":
                # read-modify-write pair on one key
                if rng.random() < write_rate:
                    counter += 1
                    ops.append(Operation.read(var))
                    if len(ops) < ops_per_site:
                        ops.append(Operation.write(var, value(site, counter, "rmw")))
                    continue
                ops.append(Operation.read(var))
                continue
            if rng.random() < write_rate:
                counter += 1
                ops.append(Operation.write(var, value(site, counter)))
                recent.append(var)
                if len(recent) > latest_window:
                    recent.pop(0)
            else:
                if workload == "d" and recent and rng.random() < 0.8:
                    var = recent[int(rng.integers(len(recent)))]
                ops.append(Operation.read(var))
        scripts.append(ops)
    return scripts


def describe(workload: str) -> str:
    """One-line description of a YCSB workload letter."""
    return {
        "a": "update heavy: 50/50 read/write, zipf",
        "b": "read mostly: 95/5 read/write, zipf",
        "c": "read only, zipf",
        "d": "read latest: 95/5, reads biased to recent writes",
        "f": "read-modify-write pairs: 50/50, zipf",
        "w": "write only: 100% writes, zipf (metadata-bound)",
    }[workload]
