"""Named workload scenarios from the paper's motivation (Sections I and V).

``social_network``
    The Section-I example: each user's data is viewed mostly from two
    regions (e.g. Chicago + US-West).  Variables home on a site with
    region-affinity placement; operations are strongly local, reads
    dominate, and popularity is Zipf (a few hot profiles).

``hdfs_like``
    The Section-V example: HDFS/MapReduce-style storage — a small constant
    replication factor regardless of cluster size, write-intensive
    ingestion, and data-local reads ("the MapReduce framework tries its
    best to satisfy data locality").

``write_intensive`` / ``read_intensive``
    Plain mixes at the extremes of Figure 4's x-axis.

Each builder returns ``(placement, workload)`` so callers can hand both to
the cluster, guaranteeing the locality bias refers to the same placement
the cluster will use.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.sim.topology import Topology, evenly_spread
from repro.store.placement import Placement, make_placement
from repro.types import Operation
from repro.workload.generator import WorkloadConfig, generate

Workload = List[List[Operation]]


def social_network(
    n_sites: int,
    n_users: int = 40,
    ops_per_site: int = 150,
    replication_factor: int = 2,
    topology: Optional[Topology] = None,
    seed: int = 0,
) -> Tuple[Placement, Workload]:
    """Region-affine user data, read-heavy, Zipf-popular, highly local."""
    topo = topology or evenly_spread(n_sites)
    placement = make_placement(
        "region-affinity",
        n_sites,
        n_users,
        replication_factor,
        seed=seed,
        distance=topo.delay,
    )
    workload = generate(
        WorkloadConfig(
            n_sites=n_sites,
            ops_per_site=ops_per_site,
            write_rate=0.15,
            key_distribution="zipf",
            zipf_s=1.2,
            locality=0.85,
            placement=placement,
            seed=seed + 1,
        )
    )
    return placement, workload


def hdfs_like(
    n_sites: int,
    n_blocks: int = 60,
    ops_per_site: int = 150,
    replication_factor: int = 3,
    seed: int = 0,
) -> Tuple[Placement, Workload]:
    """Small constant replication factor, write-intensive, data-local reads."""
    placement = make_placement("hashed", n_sites, n_blocks, replication_factor, seed=seed)
    workload = generate(
        WorkloadConfig(
            n_sites=n_sites,
            ops_per_site=ops_per_site,
            write_rate=0.6,
            key_distribution="uniform",
            locality=0.9,
            placement=placement,
            seed=seed + 1,
        )
    )
    return placement, workload


def write_intensive(
    n_sites: int,
    n_variables: int = 50,
    ops_per_site: int = 100,
    replication_factor: int = 3,
    seed: int = 0,
) -> Tuple[Placement, Workload]:
    """w_rate = 0.8 — deep in partial replication's winning regime."""
    placement = make_placement("round-robin", n_sites, n_variables, replication_factor)
    workload = generate(
        WorkloadConfig(
            n_sites=n_sites,
            ops_per_site=ops_per_site,
            write_rate=0.8,
            placement=placement,
            seed=seed,
        )
    )
    return placement, workload


def read_intensive(
    n_sites: int,
    n_variables: int = 50,
    ops_per_site: int = 100,
    replication_factor: int = 3,
    seed: int = 0,
) -> Tuple[Placement, Workload]:
    """w_rate = 0.05 — the regime where full replication's free local reads
    win on message count."""
    placement = make_placement("round-robin", n_sites, n_variables, replication_factor)
    workload = generate(
        WorkloadConfig(
            n_sites=n_sites,
            ops_per_site=ops_per_site,
            write_rate=0.05,
            placement=placement,
            seed=seed,
        )
    )
    return placement, workload


SCENARIOS = {
    "social-network": social_network,
    "hdfs-like": hdfs_like,
    "write-intensive": write_intensive,
    "read-intensive": read_intensive,
}
