"""Workload trace serialization: record a generated workload to JSON and
replay it later (regression pinning, cross-protocol comparisons on an
identical operation stream, sharing failing cases)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Union

from repro.errors import ConfigurationError
from repro.types import Operation, OpKind

Workload = List[List[Operation]]

FORMAT_VERSION = 1


def workload_to_dict(workload: Sequence[Sequence[Operation]]) -> dict:
    return {
        "version": FORMAT_VERSION,
        "n_sites": len(workload),
        "scripts": [
            [
                (
                    {"op": "w", "var": op.var, "value": op.value}
                    if op.kind is OpKind.WRITE
                    else {"op": "r", "var": op.var}
                )
                for op in script
            ]
            for script in workload
        ],
    }


def workload_from_dict(data: dict) -> Workload:
    if data.get("version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported trace version {data.get('version')!r}"
        )
    scripts: Workload = []
    for raw_script in data["scripts"]:
        script: List[Operation] = []
        for raw in raw_script:
            kind = raw.get("op")
            if kind == "w":
                script.append(Operation.write(raw["var"], raw.get("value")))
            elif kind == "r":
                script.append(Operation.read(raw["var"]))
            else:
                raise ConfigurationError(f"unknown trace op {kind!r}")
        scripts.append(script)
    return scripts


def save_trace(workload: Sequence[Sequence[Operation]], path: Union[str, Path]) -> None:
    """Write a workload trace as JSON."""
    Path(path).write_text(json.dumps(workload_to_dict(workload), indent=1))


def load_trace(path: Union[str, Path]) -> Workload:
    """Load a workload trace saved by :func:`save_trace`."""
    return workload_from_dict(json.loads(Path(path).read_text()))
