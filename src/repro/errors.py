"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An invalid cluster, placement, protocol, or workload configuration."""


class PlacementError(ConfigurationError):
    """A variable placement is malformed (empty, out of range, duplicated)."""


class UnknownVariableError(ReproError):
    """An operation referenced a variable that is not part of the store."""


class UnknownProtocolError(ConfigurationError):
    """The requested protocol name is not registered."""


class ProtocolInvariantError(ReproError):
    """An internal protocol invariant was violated (indicates a bug)."""


class SanitizerViolation(ProtocolInvariantError):
    """The runtime causal sanitizer's oracle rejected a protocol action.

    Raised only under ``ClusterConfig(sanitize=True)``.  Carries the
    observable event stream that led to the violation in ``trace`` (a
    :class:`repro.verify.sanitizer.CausalTrace`), so the failing schedule
    can be replayed.
    """

    def __init__(self, message: str, trace: object = None) -> None:
        super().__init__(message)
        self.trace = trace


class SimulationError(ReproError):
    """The discrete-event simulation reached an illegal state."""


class DeadlockError(SimulationError):
    """The simulation quiesced while updates or fetches were still pending.

    This is raised when every application process has finished (or is
    blocked) and no events remain, yet some update message never satisfied
    its activation predicate or some remote fetch never completed.  For a
    correct protocol this indicates a liveness bug; the failure-injection
    tests trigger it deliberately.
    """


class ConsistencyViolationError(ReproError):
    """The execution checker found a violation of causal consistency."""


class ServiceError(ReproError):
    """The networked KV service (``repro.service``) hit an error."""


class WireError(ServiceError):
    """A wire frame was malformed, oversized, or of an unsupported version."""


class ServiceUnavailableError(ServiceError):
    """A request could not be served by any reachable replica.

    Raised by the service client after exhausting its retry/backoff budget
    across every candidate site, and by a site server when a bounded
    server-side wait (a strict read gate or a remote fetch) expires."""
