"""Run-time metric collection for the four Table-I complexity measures.

The collector is wired into the simulation layer (network send hooks, site
apply hooks, process op hooks) and accumulates:

* **message count** — per message kind (update / fetch / fetch-reply), the
  paper's most important metric (Section V);
* **message size** — control-metadata bytes per kind, via
  :class:`repro.metrics.sizes.SizeModel`;
* **space** — bytes of control state (logs, clocks, LastWriteOn) per site,
  sampled by :meth:`MetricsCollector.probe_space`;
* **time** — simulated operation latencies, plus *activation delay* (how
  long updates sat buffered waiting for their activation predicate — the
  false-causality ablation measures this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable

from repro.metrics.sizes import DEFAULT_SIZE_MODEL, SizeModel
from repro.obs.registry import DEFAULT_TIME_BUCKETS_MS, Histogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.base import CausalProtocol


class RunningStat:
    """Streaming count/sum/min/max/mean/variance (Welford)."""

    __slots__ = ("count", "total", "min", "max", "_mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        self.count += 1
        self.total += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def as_dict(self) -> Dict[str, Any]:
        # min/max are None (JSON null) while empty: the infinity sentinels
        # are not valid JSON, and 0.0 would be a fabricated sample
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "stdev": self.stdev,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunningStat(count={self.count}, mean={self.mean:.3f})"


@dataclass
class MetricsSummary:
    """Immutable snapshot of a finished run's metrics."""

    message_counts: Dict[str, int]
    message_bytes: Dict[str, int]
    ops: Dict[str, int]
    op_latency: Dict[str, Dict[str, float]]
    activation_delay: Dict[str, Any]
    space_bytes: Dict[str, float]
    sim_time: float = 0.0
    #: bucketed activation-delay distribution (repro.obs Histogram
    #: ``as_dict`` shape) — the same definition of buffering time the
    #: ``repro-sim trace`` timeline reports: apply time − receive time
    activation_delay_hist: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_messages(self) -> int:
        return sum(self.message_counts.values())

    @property
    def total_message_bytes(self) -> int:
        return sum(self.message_bytes.values())

    def messages_per_op(self) -> float:
        n_ops = sum(self.ops.values())
        return self.total_messages / n_ops if n_ops else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON-serializable form (for CSV/JSON export and sweeps)."""
        return {
            "message_counts": dict(self.message_counts),
            "message_bytes": dict(self.message_bytes),
            "ops": dict(self.ops),
            "op_latency": {k: dict(v) for k, v in self.op_latency.items()},
            "activation_delay": dict(self.activation_delay),
            "activation_delay_hist": dict(self.activation_delay_hist),
            "space_bytes": dict(self.space_bytes),
            "sim_time": self.sim_time,
            "total_messages": self.total_messages,
            "total_message_bytes": self.total_message_bytes,
        }


class MetricsCollector:
    """Accumulates metrics during one simulation run."""

    #: message kinds
    UPDATE = "update"
    FETCH = "fetch"
    REPLY = "fetch-reply"

    def __init__(self, size_model: SizeModel | None = None) -> None:
        self.size_model = size_model or DEFAULT_SIZE_MODEL
        self.message_counts: Dict[str, int] = {
            self.UPDATE: 0,
            self.FETCH: 0,
            self.REPLY: 0,
        }
        self.message_bytes: Dict[str, int] = {
            self.UPDATE: 0,
            self.FETCH: 0,
            self.REPLY: 0,
        }
        self.ops: Dict[str, int] = {"write": 0, "read-local": 0, "read-remote": 0}
        self.op_latency: Dict[str, RunningStat] = {
            "write": RunningStat(),
            "read-local": RunningStat(),
            "read-remote": RunningStat(),
        }
        self.activation_delay = RunningStat()
        #: bucketed distribution of the same delays (shared ladder with
        #: the trace timeline, see repro.obs.registry)
        self.activation_delay_hist = Histogram(DEFAULT_TIME_BUCKETS_MS)
        self.space_samples: Dict[int, RunningStat] = {}
        self._space_peak = 0

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def on_message(self, kind: str, msg: Any) -> None:
        self.message_counts[kind] = self.message_counts.get(kind, 0) + 1
        try:
            size = self.size_model.message_size(msg)
        except TypeError:
            # extension traffic (termination-detection polls etc.) sizes as
            # a bare header
            size = self.size_model.header_bytes
        self.message_bytes[kind] = self.message_bytes.get(kind, 0) + size

    def on_op(self, kind: str, latency: float) -> None:
        self.ops[kind] += 1
        self.op_latency[kind].add(latency)

    def on_apply(self, delay: float) -> None:
        self.activation_delay.add(delay)
        self.activation_delay_hist.observe(delay)

    def probe_space(self, protocols: Iterable["CausalProtocol"]) -> int:
        """Sample the control-state footprint of every site; returns the
        total bytes across sites at this instant."""
        total = 0
        for proto in protocols:
            site_bytes = sum(
                self.size_model.meta_size(obj) for obj in proto.meta_objects()
            )
            self.space_samples.setdefault(proto.site, RunningStat()).add(site_bytes)
            total += site_bytes
        if total > self._space_peak:
            self._space_peak = total
        return total

    def publish(self, registry: Any, **labels: Any) -> None:
        """Export the collected aggregates into a ``repro.obs``
        :class:`~repro.obs.registry.MetricsRegistry` (one call per run;
        counters accumulate across calls by design)."""
        for kind, n in self.message_counts.items():
            registry.counter("messages_total", kind=kind, **labels).inc(n)
        for kind, b in self.message_bytes.items():
            registry.counter("message_bytes_total", kind=kind, **labels).inc(b)
        for kind, n in self.ops.items():
            registry.counter("ops_total", kind=kind, **labels).inc(n)
        registry.histogram(
            "activation_delay_ms",
            bounds=self.activation_delay_hist.bounds,
            **labels,
        ).absorb_dict(self.activation_delay_hist.as_dict())
        for site, stat in self.space_samples.items():
            registry.gauge("space_bytes_mean", site=site, **labels).set(stat.mean)
        registry.gauge("space_bytes_peak_total", **labels).set(
            float(self._space_peak)
        )

    # ------------------------------------------------------------------
    def summary(self, sim_time: float = 0.0) -> MetricsSummary:
        per_site_mean = [s.mean for s in self.space_samples.values()]
        per_site_max = [s.max for s in self.space_samples.values()]
        space = {
            "mean_per_site": (
                sum(per_site_mean) / len(per_site_mean) if per_site_mean else 0.0
            ),
            "max_per_site": max(per_site_max) if per_site_max else 0.0,
            "peak_total": float(self._space_peak),
        }
        return MetricsSummary(
            message_counts=dict(self.message_counts),
            message_bytes=dict(self.message_bytes),
            ops=dict(self.ops),
            op_latency={k: v.as_dict() for k, v in self.op_latency.items()},
            activation_delay=self.activation_delay.as_dict(),
            space_bytes=space,
            sim_time=sim_time,
            activation_delay_hist=self.activation_delay_hist.as_dict(),
        )
