"""Metric collection: message counts/sizes, space, timing, activation delay."""

from repro.metrics.collector import MetricsCollector, MetricsSummary, RunningStat
from repro.metrics.opcount import OpCountingSession, OpCounts
from repro.metrics.sizes import DEFAULT_SIZE_MODEL, SizeModel
from repro.metrics.visibility import (
    VisibilitySummary,
    WriteVisibility,
    summarize_visibility,
    write_visibilities,
)

__all__ = [
    "DEFAULT_SIZE_MODEL",
    "MetricsCollector",
    "MetricsSummary",
    "OpCountingSession",
    "OpCounts",
    "RunningStat",
    "SizeModel",
    "VisibilitySummary",
    "WriteVisibility",
    "summarize_visibility",
    "write_visibilities",
]
