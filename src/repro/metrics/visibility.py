"""Update-visibility latency: how long until a write is readable at its
replicas.

Section V's latency discussion weighs full replication's local-read
latency against its fan-out cost.  The complementary metric is *visibility
latency* — for each write, the time from issue until it has been applied
at (all / a fraction of) its replicas.  Computed from the recorded
history, so it composes with any protocol and topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.types import SiteId, VarId, WriteId
from repro.verify.history import History


@dataclass(frozen=True)
class WriteVisibility:
    """Visibility record for one write."""

    write_id: WriteId
    var: VarId
    issued_at: float
    #: apply time per replica that applied it (writer's local apply
    #: included); replicas that never applied are absent
    applied_at: Dict[SiteId, float]
    n_replicas: int

    @property
    def fully_visible_at(self) -> Optional[float]:
        """Simulated time the write reached every replica (None if it
        never did)."""
        if len(self.applied_at) < self.n_replicas:
            return None
        return max(self.applied_at.values())

    @property
    def full_visibility_latency(self) -> Optional[float]:
        t = self.fully_visible_at
        return None if t is None else t - self.issued_at

    def visibility_latency(self, fraction: float = 1.0) -> Optional[float]:
        """Time until ``fraction`` of the replicas applied the write."""
        need = max(1, int(round(fraction * self.n_replicas)))
        if len(self.applied_at) < need:
            return None
        times = sorted(self.applied_at.values())
        return times[need - 1] - self.issued_at


def write_visibilities(
    history: History, replicas_of: Mapping[VarId, Tuple[SiteId, ...]]
) -> List[WriteVisibility]:
    """Per-write visibility records for a finished run."""
    applied: Dict[WriteId, Dict[SiteId, float]] = {}
    for a in history.applies:
        applied.setdefault(a.write_id, {})[a.site] = a.time
    out: List[WriteVisibility] = []
    for w in history.writes:
        reps = replicas_of.get(w.var, ())
        out.append(
            WriteVisibility(
                write_id=w.write_id,
                var=w.var,
                issued_at=w.time,
                applied_at=applied.get(w.write_id, {}),
                n_replicas=len(reps),
            )
        )
    return out


@dataclass(frozen=True)
class VisibilitySummary:
    """Aggregate visibility statistics for one run."""

    n_writes: int
    n_fully_visible: int
    mean_latency: float
    p50_latency: float
    p99_latency: float
    max_latency: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"visibility: {self.n_fully_visible}/{self.n_writes} complete, "
            f"mean {self.mean_latency:.1f} ms, p99 {self.p99_latency:.1f} ms"
        )


def summarize_visibility(
    history: History,
    replicas_of: Mapping[VarId, Tuple[SiteId, ...]],
    fraction: float = 1.0,
) -> VisibilitySummary:
    """Aggregate visibility latency at the given replica ``fraction``."""
    latencies: List[float] = []
    records = write_visibilities(history, replicas_of)
    complete = 0
    for rec in records:
        lat = rec.visibility_latency(fraction)
        if lat is not None:
            complete += 1
            latencies.append(lat)
    if not latencies:
        return VisibilitySummary(len(records), 0, 0.0, 0.0, 0.0, 0.0)
    latencies.sort()

    def pct(p: float) -> float:
        idx = min(len(latencies) - 1, int(p * (len(latencies) - 1)))
        return latencies[idx]

    return VisibilitySummary(
        n_writes=len(records),
        n_fully_visible=complete,
        mean_latency=sum(latencies) / len(latencies),
        p50_latency=pct(0.5),
        p99_latency=pct(0.99),
        max_latency=latencies[-1],
    )
