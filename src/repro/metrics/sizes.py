"""Byte-accounting model for control metadata ("message size" in Table I).

The paper's message-size metric counts **control information only** — the
clocks/logs piggybacked on update messages — not the replicated data itself
(Section V: for multimedia workloads the data dwarfs the control data; the
protocols compete on control overhead).  This module prices every metadata
object the protocols produce:

===========================  =============================================
object                       bytes
===========================  =============================================
matrix clock (Full-Track)    ``n^2 * clock_bytes``
vector clock (OptP/Ahamad)   ``n * clock_bytes``
Opt-Track log                per record: ``id_bytes + clock_bytes``
                             plus ``id_bytes`` per listed destination
CRP log                      per record: ``id_bytes + clock_bytes``
message header               ``header_bytes`` (routing, var id, write id)
===========================  =============================================

The defaults (4-byte site ids, 8-byte clocks, 24-byte headers) are the
conventional choices; every constant is configurable so sensitivity
analyses can reprice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.clocks import MatrixClock, VectorClock
from repro.core.log import DepLog
from repro.core.messages import (
    CrpMeta,
    FetchReply,
    FetchRequest,
    OptTrackMeta,
    UpdateMessage,
)
from repro.sim.batching import UpdateBatch


@dataclass(frozen=True)
class SizeModel:
    """Prices protocol metadata in bytes."""

    id_bytes: int = 4
    clock_bytes: int = 8
    header_bytes: int = 24
    #: size charged for the application value payload; 0 by default so that
    #: measured message sizes are pure control overhead, as in the paper
    value_bytes: int = 0

    # ------------------------------------------------------------------
    def meta_size(self, meta: Any) -> int:
        """Size of one piggybacked/stored metadata object."""
        if meta is None:
            return 0
        if isinstance(meta, MatrixClock):
            return meta.size_bytes(self.clock_bytes)
        if isinstance(meta, VectorClock):
            return meta.size_bytes(self.clock_bytes)
        if isinstance(meta, DepLog):
            return meta.size_bytes(self.id_bytes, self.clock_bytes)
        if isinstance(meta, OptTrackMeta):
            # clock + replica set + log
            return (
                self.clock_bytes
                + meta.replicas_mask.bit_count() * self.id_bytes
                + meta.log.size_bytes(self.id_bytes, self.clock_bytes)
            )
        if isinstance(meta, CrpMeta):
            return self.clock_bytes + len(meta.log) * (
                self.id_bytes + self.clock_bytes
            )
        if isinstance(meta, dict):
            # CRP local log {sender: clock} or LastWriteOn {var: record}
            return len(meta) * (self.id_bytes + self.clock_bytes)
        if isinstance(meta, tuple) and len(meta) == 2:
            # CRP LastWriteOn record <sender, clock>
            return self.id_bytes + self.clock_bytes
        if isinstance(meta, np.ndarray):
            # Apply arrays / strict-fetch dependency columns
            return int(meta.size) * self.clock_bytes
        if isinstance(meta, (list, frozenset, set)):
            return len(meta) * (self.id_bytes + self.clock_bytes)
        raise TypeError(f"don't know how to size {type(meta).__name__}")

    # ------------------------------------------------------------------
    def message_size(self, msg: Any) -> int:
        """Total size of one on-the-wire message (header + control data).

        Called once per message sent; the common case (an unbatched
        ``UpdateMessage``) is tested first, and ``DepLog.size_bytes``
        underneath is memoized, so repricing the same shared log snapshot
        across a multicast's copies costs one dict walk total.
        """
        if isinstance(msg, UpdateMessage):
            return self.header_bytes + self.value_bytes + self.meta_size(msg.meta)
        if isinstance(msg, UpdateBatch):
            # one transport header; every update still pays its control
            # metadata (plus a small per-update subheader) — batching
            # saves headers and message count, never metadata
            per_update_header = 8
            return self.header_bytes + sum(
                per_update_header + self.value_bytes + self.meta_size(u.meta)
                for u in msg.updates
            )
        if isinstance(msg, FetchRequest):
            deps = 0
            if msg.deps is not None:
                if isinstance(msg.deps, np.ndarray):
                    deps = int(msg.deps.size) * self.clock_bytes
                else:  # tuple of (sender, clock) pairs
                    deps = len(msg.deps) * (self.id_bytes + self.clock_bytes)
            return self.header_bytes + deps
        if isinstance(msg, FetchReply):
            return self.header_bytes + self.value_bytes + self.meta_size(msg.meta)
        raise TypeError(f"don't know how to size {type(msg).__name__}")


DEFAULT_SIZE_MODEL = SizeModel()
