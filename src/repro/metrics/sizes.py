"""Byte-accounting model for control metadata ("message size" in Table I).

The paper's message-size metric counts **control information only** — the
clocks/logs piggybacked on update messages — not the replicated data itself
(Section V: for multimedia workloads the data dwarfs the control data; the
protocols compete on control overhead).  This module prices every metadata
object the protocols produce:

===========================  =============================================
object                       bytes
===========================  =============================================
matrix clock (Full-Track)    ``n^2 * clock_bytes``
vector clock (OptP/Ahamad)   ``n * clock_bytes``
Opt-Track log                per record: ``id_bytes + clock_bytes``
                             plus ``id_bytes`` per listed destination
CRP log                      per record: ``id_bytes + clock_bytes``
message header               ``header_bytes`` (routing, var id, write id)
===========================  =============================================

The defaults (4-byte site ids, 8-byte clocks, 24-byte headers) are the
conventional choices; every constant is configurable so sensitivity
analyses can reprice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.clocks import MatrixClock, VectorClock
from repro.core.log import DepLog
from repro.core.messages import (
    CrpMeta,
    FetchReply,
    FetchRequest,
    OptTrackMeta,
    UpdateMessage,
)


@dataclass(frozen=True)
class SizeModel:
    """Prices protocol metadata in bytes."""

    id_bytes: int = 4
    clock_bytes: int = 8
    header_bytes: int = 24
    #: size charged for the application value payload; 0 by default so that
    #: measured message sizes are pure control overhead, as in the paper
    value_bytes: int = 0

    # ------------------------------------------------------------------
    # per-type pricing rules (dispatched by exact type; see meta_size)
    # ------------------------------------------------------------------
    def _size_clock(self, meta: Any) -> int:
        return meta.size_bytes(self.clock_bytes)

    def _size_deplog(self, meta: DepLog) -> int:
        return meta.size_bytes(self.id_bytes, self.clock_bytes)

    def _size_opt_track(self, meta: OptTrackMeta) -> int:
        # clock + replica set + log
        return (
            self.clock_bytes
            + meta.replicas_mask.bit_count() * self.id_bytes
            + meta.log.size_bytes(self.id_bytes, self.clock_bytes)
        )

    def _size_crp(self, meta: CrpMeta) -> int:
        return self.clock_bytes + len(meta.log) * (
            self.id_bytes + self.clock_bytes
        )

    def _size_pairs(self, meta: Any) -> int:
        # CRP local log {sender: clock}, LastWriteOn {var: record}, or a
        # collection of (sender, clock)-priced records
        return len(meta) * (self.id_bytes + self.clock_bytes)

    def _size_pair_tuple(self, meta: tuple) -> int:
        if len(meta) != 2:
            raise TypeError(f"don't know how to size {len(meta)}-tuple {meta!r}")
        # CRP LastWriteOn record <sender, clock>
        return self.id_bytes + self.clock_bytes

    def _size_ndarray(self, meta: np.ndarray) -> int:
        # Apply arrays / strict-fetch dependency columns
        return int(meta.size) * self.clock_bytes

    #: exact-type dispatch for meta_size — one dict lookup per metadata
    #: object instead of an isinstance chain (this runs for every message
    #: priced and every space probe).  Subtypes are resolved through the
    #: chain once, then memoized under their exact type.
    _META_SIZERS = {
        MatrixClock: _size_clock,
        VectorClock: _size_clock,
        DepLog: _size_deplog,
        OptTrackMeta: _size_opt_track,
        CrpMeta: _size_crp,
        dict: _size_pairs,
        tuple: _size_pair_tuple,
        np.ndarray: _size_ndarray,
        list: _size_pairs,
        frozenset: _size_pairs,
        set: _size_pairs,
    }

    # ------------------------------------------------------------------
    def meta_size(self, meta: Any) -> int:
        """Size of one piggybacked/stored metadata object."""
        if meta is None:
            return 0
        sizer = self._META_SIZERS.get(type(meta))
        if sizer is None:
            for base, fn in list(self._META_SIZERS.items()):
                if isinstance(meta, base):
                    # memoize the subtype so the next lookup is exact
                    self._META_SIZERS[type(meta)] = fn
                    sizer = fn
                    break
            else:
                raise TypeError(f"don't know how to size {type(meta).__name__}")
        return sizer(self, meta)

    # ------------------------------------------------------------------
    def _size_update(self, msg: UpdateMessage) -> int:
        return self.header_bytes + self.value_bytes + self.meta_size(msg.meta)

    def _size_batch(self, msg: Any) -> int:  # msg: repro.sim.batching.UpdateBatch
        # one transport header; every update still pays its control
        # metadata (plus a small per-update subheader) — batching
        # saves headers and message count, never metadata
        per_update_header = 8
        return self.header_bytes + sum(
            per_update_header + self.value_bytes + self.meta_size(u.meta)
            for u in msg.updates
        )

    def _size_fetch_request(self, msg: FetchRequest) -> int:
        deps = 0
        if msg.deps is not None:
            if isinstance(msg.deps, np.ndarray):
                deps = int(msg.deps.size) * self.clock_bytes
            else:  # tuple of (sender, clock) pairs
                deps = len(msg.deps) * (self.id_bytes + self.clock_bytes)
        return self.header_bytes + deps

    def _size_fetch_reply(self, msg: FetchReply) -> int:
        return self.header_bytes + self.value_bytes + self.meta_size(msg.meta)

    #: exact-type dispatch for message_size, same scheme as _META_SIZERS.
    #: UpdateBatch is registered lazily on first miss — repro.sim imports
    #: the metrics package, so naming it here would be a circular import.
    _MESSAGE_SIZERS = {
        UpdateMessage: _size_update,
        FetchRequest: _size_fetch_request,
        FetchReply: _size_fetch_reply,
    }

    def message_size(self, msg: Any) -> int:
        """Total size of one on-the-wire message (header + control data).

        Called once per message sent, dispatched on the message's exact
        type; ``DepLog.size_bytes`` underneath is memoized, so repricing
        the same shared log snapshot across a multicast's copies costs
        one dict walk total.
        """
        sizer = self._MESSAGE_SIZERS.get(type(msg))
        if sizer is None:
            sizer = self._resolve_message_sizer(msg)
        return sizer(self, msg)

    def _resolve_message_sizer(self, msg: Any):
        from repro.sim.batching import UpdateBatch

        table = self._MESSAGE_SIZERS
        table.setdefault(UpdateBatch, SizeModel._size_batch)
        for base, fn in list(table.items()):
            if isinstance(msg, base):
                table[type(msg)] = fn  # memoize: next lookup is exact
                return fn
        raise TypeError(f"don't know how to size {type(msg).__name__}")


DEFAULT_SIZE_MODEL = SizeModel()
