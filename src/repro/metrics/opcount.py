"""Abstract operation counting for the Table-I time-complexity row.

Wall-clock micro-benchmarks of the protocols are dominated by constants
(numpy's vectorized matrix copies, Python object construction), which
hides the paper's asymptotic distinctions at realistic n.  This module
measures the *op counts* the paper's analysis actually talks about:

* clock cells read/written (matrix and vector clocks),
* log records touched (copied, scanned, merged, pruned).

:class:`OpCountingSession` wraps one protocol instance and derives, for
each ``write``/``read_local`` call, the number of abstract operations from
the sizes of the structures the call manipulates — the same accounting the
paper's Section IV performs symbolically:

=================  =========================================  ============
protocol           write                                       read (local)
=================  =========================================  ============
full-track         n² (snapshot) + p (increments)              n² (merge)
opt-track          Σ_dests |log| (copies) + |log| (prune)      |log|+|piggyback| (merge)
opt-track-crp      |log| (copy) + n (fan-out)                  1 (merge one record)
optp               n (snapshot) + n (fan-out)                  n (merge)
ahamad             n (snapshot) + n (fan-out)                  1
=================  =========================================  ============

This is measurement, not modeling: the counts use the protocol's *live*
structure sizes (log lengths after pruning, actual destination-set sizes),
so Opt-Track's amortized behaviour shows up as measured sub-worst-case
counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List

from repro.core.ahamad import AhamadProtocol
from repro.core.base import CausalProtocol
from repro.core.full_track import FullTrackProtocol
from repro.core.messages import WriteResult
from repro.core.opt_track import OptTrackProtocol
from repro.core.opt_track_crp import OptTrackCrpProtocol
from repro.core.optp import OptPProtocol
from repro.errors import ConfigurationError
from repro.types import VarId


@dataclass
class OpCounts:
    """Accumulated abstract operation counts."""

    writes: int = 0
    reads: int = 0
    write_ops: int = 0
    read_ops: int = 0
    #: per-call samples, for distribution analysis
    write_samples: List[int] = field(default_factory=list)
    read_samples: List[int] = field(default_factory=list)

    @property
    def mean_write_ops(self) -> float:
        return self.write_ops / self.writes if self.writes else 0.0

    @property
    def mean_read_ops(self) -> float:
        return self.read_ops / self.reads if self.reads else 0.0


class OpCountingSession:
    """Wraps a protocol; counts abstract ops per write / local read."""

    def __init__(self, protocol: CausalProtocol) -> None:
        self.protocol = protocol
        self.counts = OpCounts()

    # ------------------------------------------------------------------
    def _write_cost(self, var: VarId, pre_log_len: int, result: WriteResult) -> int:
        p = self.protocol
        n = p.n
        n_dests = len(result.messages)
        if isinstance(p, FullTrackProtocol):
            # matrix snapshot + per-replica increments
            return n * n + len(p.replicas(var))
        if isinstance(p, OptTrackProtocol):
            if p.distributed_prune:
                # one snapshot + local prune
                return 2 * pre_log_len + n_dests
            # one pruned copy per destination + local prune
            return pre_log_len * (n_dests + 1) + n_dests
        if isinstance(p, OptTrackCrpProtocol):
            # log copy (<= d+1 records) + n-1 fan-out
            return pre_log_len + n_dests
        if isinstance(p, (OptPProtocol, AhamadProtocol)):
            # vector snapshot + fan-out
            return n + n_dests
        raise ConfigurationError(f"unknown protocol {type(p).__name__}")

    def _read_cost(self, var: VarId, pre_log_len: int) -> int:
        p = self.protocol
        n = p.n
        if isinstance(p, FullTrackProtocol):
            return n * n if var in p.last_write_on else 1
        if isinstance(p, OptTrackProtocol):
            lw = p.last_write_on.get(var)
            return pre_log_len + (len(lw) if lw is not None else 0) + 1
        if isinstance(p, OptTrackCrpProtocol):
            return 1
        if isinstance(p, OptPProtocol):
            return n if var in p.last_write_on else 1
        if isinstance(p, AhamadProtocol):
            return 1
        raise ConfigurationError(f"unknown protocol {type(p).__name__}")

    # ------------------------------------------------------------------
    def _log_len(self) -> int:
        p = self.protocol
        if isinstance(p, OptTrackProtocol):
            return len(p.log)
        if isinstance(p, OptTrackCrpProtocol):
            return len(p.log)
        return 0

    def write(self, var: VarId, value: Any) -> WriteResult:
        pre = self._log_len()
        result = self.protocol.write(var, value)
        cost = self._write_cost(var, pre, result)
        self.counts.writes += 1
        self.counts.write_ops += cost
        self.counts.write_samples.append(cost)
        return result

    def read_local(self, var: VarId):
        pre = self._log_len()
        cost = self._read_cost(var, pre)
        out = self.protocol.read_local(var)
        self.counts.reads += 1
        self.counts.read_ops += cost
        self.counts.read_samples.append(cost)
        return out

    def __getattr__(self, name: str):
        # everything else passes through to the wrapped protocol
        return getattr(self.protocol, name)
