"""The shared-memory specification: variables and their replica sets.

Thin, validated wrapper around a placement map, with the derived quantities
the paper's analysis uses (``X_i``, replication factor, locality of an
access).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Mapping, Tuple

from repro.errors import PlacementError, UnknownVariableError
from repro.types import SiteId, VarId


@dataclass(frozen=True)
class SharedMemorySpec:
    """Immutable description of the shared memory Q (paper Section II-A)."""

    n_sites: int
    placement: Mapping[VarId, Tuple[SiteId, ...]]

    def __post_init__(self) -> None:
        if self.n_sites <= 0:
            raise PlacementError(f"need n >= 1 sites, got {self.n_sites}")
        if not self.placement:
            raise PlacementError("shared memory needs at least one variable")
        for var, reps in self.placement.items():
            if not reps:
                raise PlacementError(f"variable {var!r} has no replicas")
            if len(set(reps)) != len(reps):
                raise PlacementError(f"variable {var!r} has duplicate replicas")
            for s in reps:
                if not (0 <= s < self.n_sites):
                    raise PlacementError(
                        f"variable {var!r} replica {s} out of range"
                    )

    # ------------------------------------------------------------------
    @property
    def q(self) -> int:
        """Number of variables."""
        return len(self.placement)

    @property
    def variables(self) -> List[VarId]:
        return list(self.placement)

    def replicas(self, var: VarId) -> Tuple[SiteId, ...]:
        try:
            return tuple(self.placement[var])
        except KeyError:
            raise UnknownVariableError(var) from None

    def vars_at(self, site: SiteId) -> List[VarId]:
        """The paper's ``X_i``."""
        return [v for v, reps in self.placement.items() if site in reps]

    def is_local(self, site: SiteId, var: VarId) -> bool:
        return site in self.replicas(var)

    def replication_factor(self) -> float:
        """Mean replicas per variable (the paper's ``p`` when uniform)."""
        return sum(len(r) for r in self.placement.values()) / self.q

    def is_fully_replicated(self) -> bool:
        return all(len(r) == self.n_sites for r in self.placement.values())

    def mean_local_fraction(self) -> float:
        """Expected fraction of uniform accesses that are local —
        the paper's ``p/n`` under even placement."""
        return sum(len(r) for r in self.placement.values()) / (
            self.q * self.n_sites
        )

    def __iter__(self) -> Iterator[VarId]:
        return iter(self.placement)
