"""Replicated store layer: variable placement and the client-facing API."""

from repro.store.placement import (
    Placement,
    default_variables,
    full,
    hashed,
    make_placement,
    region_affinity,
    replication_factor,
    round_robin,
    var_name,
    vars_at,
)

__all__ = [
    "Placement",
    "default_variables",
    "full",
    "hashed",
    "make_placement",
    "region_affinity",
    "replication_factor",
    "round_robin",
    "var_name",
    "vars_at",
]
