"""CausalStore — the developer-facing geo-replicated key-value API.

Wraps a :class:`repro.sim.cluster.Cluster` in the vocabulary of a cloud
key-value store: named keys (declared up front, as in the paper's fixed
variable set), datacenters, sessions pinned to a datacenter, ``put`` and
``get``.  This is the surface the examples program against; experiments
that need raw control use :class:`~repro.sim.cluster.Cluster` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, UnknownVariableError
from repro.sim.cluster import Cluster, ClusterConfig, Session
from repro.sim.topology import Topology
from repro.store.memory import SharedMemorySpec
from repro.store.placement import Placement, make_placement
from repro.types import SiteId, WriteId


@dataclass
class StoreConfig:
    """Configuration of a :class:`CausalStore`."""

    n_datacenters: int
    keys: Sequence[str]
    protocol: str = "opt-track"
    replication_factor: Optional[int] = None
    placement_strategy: str = "round-robin"
    placement: Optional[Placement] = None
    topology: Optional[Topology] = None
    seed: int = 0
    strict_remote_reads: bool = True

    def __post_init__(self) -> None:
        if not self.keys:
            raise ConfigurationError("a store needs at least one key")
        if len(set(self.keys)) != len(self.keys):
            raise ConfigurationError("duplicate keys")


class CausalStore:
    """A causally consistent, (partially) geo-replicated key-value store."""

    def __init__(self, config: StoreConfig) -> None:
        self.config = config
        n = config.n_datacenters
        if config.placement is not None:
            placement = dict(config.placement)
            missing = set(config.keys) - set(placement)
            if missing:
                raise ConfigurationError(f"placement missing keys: {sorted(missing)}")
        else:
            from repro.core.base import protocol_class

            p = (
                n
                if protocol_class(config.protocol).full_replication_only
                else (config.replication_factor or min(3, n))
            )
            distance = config.topology.delay if config.topology else None
            indexed = make_placement(
                config.placement_strategy,
                n,
                len(config.keys),
                p,
                seed=config.seed,
                distance=distance,
            )
            # re-key from x0..x{q-1} to the user's key names
            placement = {
                key: indexed[f"x{i}"] for i, key in enumerate(config.keys)
            }
        self.spec = SharedMemorySpec(n, placement)
        self.cluster = Cluster(
            ClusterConfig(
                n_sites=n,
                protocol=config.protocol,
                placement=placement,
                topology=config.topology,
                seed=config.seed,
                strict_remote_reads=config.strict_remote_reads,
            )
        )
        self._sessions: Dict[SiteId, Session] = {}

    # ------------------------------------------------------------------
    @property
    def keys(self) -> List[str]:
        return self.spec.variables

    def session(self, datacenter: SiteId) -> Session:
        if datacenter not in self._sessions:
            self._sessions[datacenter] = self.cluster.session(datacenter)
        return self._sessions[datacenter]

    def put(self, datacenter: SiteId, key: str, value: Any) -> WriteId:
        """Write ``key`` from ``datacenter``; replication is asynchronous."""
        if key not in self.spec.placement:
            raise UnknownVariableError(key)
        return self.session(datacenter).write(key, value)

    def get(self, datacenter: SiteId, key: str) -> Any:
        """Read ``key`` from ``datacenter`` (remote fetch if not local)."""
        if key not in self.spec.placement:
            raise UnknownVariableError(key)
        return self.session(datacenter).read(key)

    def get_versioned(self, datacenter: SiteId, key: str) -> Tuple[Any, Optional[WriteId]]:
        if key not in self.spec.placement:
            raise UnknownVariableError(key)
        return self.session(datacenter).read_versioned(key)

    def replicas(self, key: str) -> Tuple[SiteId, ...]:
        return self.spec.replicas(key)

    def settle(self) -> None:
        """Drain all in-flight replication traffic."""
        self.cluster.settle()

    def check(self):
        """Run the causal-consistency checker over everything so far."""
        from repro.verify.checker import check_history

        if self.cluster.history is None:
            raise ConfigurationError("history recording is disabled")
        return check_history(self.cluster.history, self.spec.placement)
