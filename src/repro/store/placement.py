"""Replica placement strategies.

The paper's model (Section II-B): each site holds a subset ``X_i`` of the
``q`` variables; with replication factor ``p`` and even placement, the
average ``|X_i|`` is ``pq/n``.  The placement map (variable -> ordered
tuple of replica sites, the paper's ``x_h.replicas``) is global knowledge
shared by every site.

Strategies
----------
``round_robin``     variable ``x_h`` lives on sites ``h, h+1, .., h+p-1 mod n``
                    — perfectly even (every site holds exactly ``pq/n``
                    variables when ``n | q``).
``hashed``          p distinct pseudo-random sites per variable, seeded —
                    the consistent-hashing-style placement of real stores.
``region_affinity`` each variable gets a *home site*; replicas are its
                    topologically nearest sites.  Models the paper's
                    motivating scenario (Section I): user data replicated
                    only near the regions that access it.
``full``            every variable on every site (the CRP case, p = n).
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PlacementError
from repro.types import SiteId, VarId

Placement = Dict[VarId, Tuple[SiteId, ...]]


def var_name(index: int) -> VarId:
    """Canonical variable name for index ``index`` (``x0``, ``x1``, ...)."""
    return f"x{index}"


def default_variables(q: int) -> list[VarId]:
    if q <= 0:
        raise PlacementError(f"need q >= 1 variables, got {q}")
    return [var_name(i) for i in range(q)]


def _check(n: int, p: int) -> None:
    if n <= 0:
        raise PlacementError(f"need n >= 1 sites, got {n}")
    if not (1 <= p <= n):
        raise PlacementError(f"replication factor p={p} must satisfy 1 <= p <= n={n}")


def round_robin(n: int, q: int, p: int) -> Placement:
    """Variable ``x_h`` on sites ``h mod n, ..., (h+p-1) mod n``."""
    _check(n, p)
    return {
        var_name(h): tuple(sorted((h + k) % n for k in range(p)))
        for h in range(q)
    }


def hashed(n: int, q: int, p: int, seed: int = 0) -> Placement:
    """``p`` distinct pseudo-random replicas per variable (seeded)."""
    _check(n, p)
    rng = np.random.default_rng(seed)
    out: Placement = {}
    for h in range(q):
        sites = rng.choice(n, size=p, replace=False)
        out[var_name(h)] = tuple(sorted(int(s) for s in sites))
    return out


def full(n: int, q: int) -> Placement:
    """Full replication: every variable on every site (p = n)."""
    _check(n, n)
    everyone = tuple(range(n))
    return {var_name(h): everyone for h in range(q)}


def region_affinity(
    n: int,
    q: int,
    p: int,
    distance: Callable[[SiteId, SiteId], float],
    homes: Optional[Sequence[SiteId]] = None,
    seed: int = 0,
) -> Placement:
    """Each variable homes on a site; replicas are its ``p`` nearest sites
    (home included) under the ``distance`` function.

    ``homes[h]`` fixes the home of variable ``h``; otherwise homes are
    drawn uniformly at random (seeded).
    """
    _check(n, p)
    rng = np.random.default_rng(seed)
    out: Placement = {}
    for h in range(q):
        home = int(homes[h]) if homes is not None else int(rng.integers(n))
        if not (0 <= home < n):
            raise PlacementError(f"home site {home} out of range for n={n}")
        ranked = sorted(range(n), key=lambda s: (distance(home, s), s))
        out[var_name(h)] = tuple(sorted(ranked[:p]))
    return out


def make_placement(
    strategy: str,
    n: int,
    q: int,
    p: int,
    *,
    seed: int = 0,
    distance: Optional[Callable[[SiteId, SiteId], float]] = None,
    homes: Optional[Sequence[SiteId]] = None,
) -> Placement:
    """Build a placement by strategy name (``round-robin``, ``hashed``,
    ``region-affinity``, ``full``)."""
    if strategy == "round-robin":
        return round_robin(n, q, p)
    if strategy == "hashed":
        return hashed(n, q, p, seed)
    if strategy == "full":
        return full(n, q)
    if strategy == "region-affinity":
        if distance is None:
            raise PlacementError("region-affinity placement needs a distance function")
        return region_affinity(n, q, p, distance, homes, seed)
    raise PlacementError(f"unknown placement strategy {strategy!r}")


def replication_factor(placement: Mapping[VarId, Tuple[SiteId, ...]]) -> float:
    """Mean number of replicas per variable."""
    if not placement:
        raise PlacementError("empty placement")
    return sum(len(r) for r in placement.values()) / len(placement)


def vars_at(placement: Mapping[VarId, Tuple[SiteId, ...]], site: SiteId) -> list[VarId]:
    """The paper's ``X_i``: variables replicated at ``site``."""
    return [v for v, reps in placement.items() if site in reps]
