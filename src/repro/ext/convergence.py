"""Causal+ (convergent) consistency — the paper's Section V recipe.

    "We can provide causal+ consistency for our partially replicated
    system as follows: periodically, run a global termination detection
    algorithm; once termination is detected, determine the final set of
    values of each variable, and use that set to provide convergent
    causal consistency."

Two pieces:

* :class:`TerminationDetector` — Mattern's four-counter (double-wave)
  termination detection, run as real control messages over the simulated
  network: a coordinator polls every site for (messages sent, messages
  received, active?); the system has terminated when two consecutive waves
  return identical counts, equal send/receive totals, and all-passive.
  A purely local observer would be simpler, but the point of the exercise
  is that termination *can* be detected with the system's own primitives.

* :func:`converge` — once terminated, compute each variable's final value:
  among the writes applied at the variable's replicas, take the causally
  maximal ones and break ties deterministically by
  :class:`~repro.types.WriteId` (last-writer-wins on the writer's
  (seq, site)); install that value at every replica.  After convergence
  every replica of every variable holds the same value — the liveness
  guarantee of causal+ — and the choice respects causality (a causally
  dominated write never wins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.cluster import Cluster
from repro.types import SiteId, VarId, WriteId

CONTROL = "termination-poll"
CONTROL_REPLY = "termination-ack"


@dataclass(frozen=True, slots=True)
class _Poll:
    wave: int
    coordinator: SiteId


@dataclass(frozen=True, slots=True)
class _Ack:
    wave: int
    site: SiteId
    sent: int
    received: int
    active: bool


class TerminationDetector:
    """Mattern-style double-wave counting termination detector.

    Drives waves of poll/ack control messages through the cluster's
    network.  ``on_terminated`` fires (once) at the simulated time the
    second identical all-passive wave completes.
    """

    def __init__(
        self,
        cluster: Cluster,
        on_terminated: Optional[Callable[[], None]] = None,
        poll_interval: float = 50.0,
        coordinator: SiteId = 0,
    ) -> None:
        self.cluster = cluster
        self.on_terminated = on_terminated
        self.poll_interval = poll_interval
        self.coordinator = coordinator
        self.terminated_at: Optional[float] = None
        self.waves_run = 0
        self._acks: Dict[int, List[_Ack]] = {}
        self._last_wave_counts: Optional[Tuple[int, int]] = None
        self._register_handlers()

    # ------------------------------------------------------------------
    def _register_handlers(self) -> None:
        net = self.cluster.network
        for site in self.cluster.sites:
            original = net._handlers[site.site]

            def handler(kind: str, msg: Any, _site=site, _orig=original) -> None:
                if kind == CONTROL:
                    self._handle_poll(_site.site, msg)
                elif kind == CONTROL_REPLY:
                    self._handle_ack(msg)
                else:
                    _orig(kind, msg)

            net._handlers[site.site] = handler

    def _site_counters(self, site: SiteId) -> Tuple[int, int, bool]:
        """(update messages sent, update messages applied, busy?) at a
        site — Mattern's per-process counters.

        'Active' means the site still buffers unapplied updates, unserved
        fetches, or blocked reads — the underlying computation is not
        finished there.  Termination requires all-passive twice in a row
        with matching totals: every multicast update accounted for by an
        apply somewhere.
        """
        s = self.cluster.sites[site]
        return s.updates_sent, s.updates_applied, not s.quiescent

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin polling; keeps scheduling waves until termination."""
        self.cluster.sim.schedule(self.poll_interval, self._run_wave)

    def _run_wave(self) -> None:
        if self.terminated_at is not None:
            return
        self.waves_run += 1
        wave = self.waves_run
        self._acks[wave] = []
        poll = _Poll(wave, self.coordinator)
        n = self.cluster.n_sites
        # poll self directly, others over the network
        self._handle_poll(self.coordinator, poll)
        for dst in range(n):
            if dst != self.coordinator:
                self.cluster.network.send(CONTROL, poll, self.coordinator, dst)

    def _handle_poll(self, site: SiteId, poll: _Poll) -> None:
        sent, received, active = self._site_counters(site)
        ack = _Ack(poll.wave, site, sent, received, active)
        if site == poll.coordinator:
            self._handle_ack(ack)
        else:
            self.cluster.network.send(CONTROL_REPLY, ack, site, poll.coordinator)

    def _handle_ack(self, ack: _Ack) -> None:
        acks = self._acks.get(ack.wave)
        if acks is None:
            return
        acks.append(ack)
        if len(acks) < self.cluster.n_sites:
            return
        # wave complete
        all_passive = not any(a.active for a in acks)
        totals = (sum(a.sent for a in acks), sum(a.received for a in acks))
        if (
            all_passive
            and totals[0] == totals[1]  # every multicast update applied
            and self._last_wave_counts == totals
            and self._all_processes_done()
        ):
            self.terminated_at = self.cluster.sim.now
            if self.on_terminated is not None:
                self.on_terminated()
            return
        self._last_wave_counts = totals if all_passive else None
        self.cluster.sim.schedule(self.poll_interval, self._run_wave)

    def _all_processes_done(self) -> bool:
        # Sessions have no process objects; treat the application as done
        # when no site buffers work and no events besides ours are queued.
        return all(s.quiescent for s in self.cluster.sites)


# ----------------------------------------------------------------------
def final_values(cluster: Cluster) -> Dict[VarId, Tuple[Any, Optional[WriteId]]]:
    """The convergence target: per variable, the causally-maximal applied
    write, ties broken by the largest ``(seq, site)`` (deterministic LWW).

    Uses only per-replica local state — each replica votes its current
    version, and because applies respect causality, the vote set contains
    the causally maximal writes; LWW picks one deterministically.
    """
    out: Dict[VarId, Tuple[Any, Optional[WriteId]]] = {}
    for var, reps in cluster.placement.items():
        best: Tuple[Any, Optional[WriteId]] = (None, None)
        for site in reps:
            value, wid = cluster.protocols[site].local_value(var)
            if wid is None:
                continue
            if best[1] is None or (wid.seq, wid.site) > (best[1].seq, best[1].site):
                best = (value, wid)
        out[var] = best
    return out


def converge(cluster: Cluster) -> Dict[VarId, Tuple[Any, Optional[WriteId]]]:
    """Install the final values at every replica (the causal+ step).

    Returns the chosen final value per variable.  Must be called on a
    quiescent cluster (run :meth:`Cluster.settle` first); raises
    :class:`~repro.errors.SimulationError` otherwise.
    """
    for s in cluster.sites:
        if s.pending_updates:
            raise SimulationError(
                "converge() requires a quiescent cluster; call settle() first"
            )
    finals = final_values(cluster)
    for var, (value, wid) in finals.items():
        if wid is None:
            continue
        for site in cluster.placement[var]:
            proto = cluster.protocols[site]
            cur_value, cur_wid = proto.local_value(var)
            if cur_wid != wid:
                proto._values[var] = (value, wid)
    return finals


def is_convergent(cluster: Cluster) -> bool:
    """True when every replica of every variable holds the same version."""
    for var, reps in cluster.placement.items():
        versions = {cluster.protocols[s].local_value(var)[1] for s in reps}
        if len(versions) > 1:
            return False
    return True
