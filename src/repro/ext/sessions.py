"""Client migration with session guarantees (beyond the paper).

The paper's model pins one application process to each site.  Real cloud
clients *move*: a user reads their timeline through datacenter A, then
their phone reconnects through datacenter B.  Without care this breaks the
session guarantees causal consistency is prized for — B may not have
applied what the client already saw at A (monotonic reads), or the
client's own write issued at A (read-your-writes).

:class:`MigratingClient` fixes this with a client-side *causal token*, the
moral equivalent of a COPS context, built from the protocols' own
metadata:

* **full-track** — the token is a matrix clock.  It absorbs the
  ``LastWriteOn`` clock of every value the client reads.  Before a read at
  site ``s``, the client waits until ``s`` has applied everything the
  token says was destined to ``s`` (``Apply_s >= token[:, s]``).  Before a
  write at ``s``, the token is merged into ``s``'s Write clock so the
  write's piggybacked dependencies include the client's causal past.
* **opt-track** — the token is a dependency log (merged with the same
  MERGE as the protocol); reads wait on token records naming the serving
  site; writes merge the token into the site's log first.
* **opt-track-crp / optp / ahamad** — the token is an ``n``-vector of
  per-writer clocks (full replication makes per-writer sequence numbers
  directly comparable with the sites' apply state).

All waiting runs through the cluster's event loop, so a stalled guarantee
simply blocks the client until replication catches up — availability is
traded exactly where the CAP theorem says it must be.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.core.ahamad import AhamadProtocol
from repro.core.base import CausalProtocol
from repro.core.clocks import MatrixClock
from repro.core.full_track import FullTrackProtocol
from repro.core.log import DepLog
from repro.core.opt_track import OptTrackProtocol
from repro.core.opt_track_crp import OptTrackCrpProtocol
from repro.core.optp import OptPProtocol
from repro.core import bitsets
from repro.errors import ConfigurationError, DeadlockError
from repro.sim.cluster import Cluster
from repro.types import SiteId, VarId, WriteId


class _Token:
    """Protocol-specific causal token."""

    def covered_by(self, proto: CausalProtocol) -> bool:
        raise NotImplementedError

    def absorb_site(self, proto: CausalProtocol) -> None:
        """Fold the site's current causal knowledge into the token (after
        an operation performed there)."""
        raise NotImplementedError

    def push_to_site(self, proto: CausalProtocol) -> None:
        """Fold the token into the site's causal state (before a write, so
        the write inherits the client's dependencies)."""
        raise NotImplementedError


class _MatrixToken(_Token):
    def __init__(self, n: int) -> None:
        self.clock = MatrixClock(n)

    def covered_by(self, proto: FullTrackProtocol) -> bool:
        col = self.clock.m[:, proto.site]
        return bool(np.all(proto.apply_counts >= col))

    def absorb_site(self, proto: FullTrackProtocol) -> None:
        self.clock.merge(proto.write_clock)

    def push_to_site(self, proto: FullTrackProtocol) -> None:
        proto.write_clock.merge(self.clock)


class _LogToken(_Token):
    def __init__(self) -> None:
        self.log = DepLog()

    def covered_by(self, proto: OptTrackProtocol) -> bool:
        me = bitsets.singleton(proto.site)
        return all(
            proto.apply_clocks[z] >= c for (z, c), d in self.log if d & me
        )

    def absorb_site(self, proto: OptTrackProtocol) -> None:
        self.log.merge(proto.log)
        self.log.purge()

    def push_to_site(self, proto: OptTrackProtocol) -> None:
        proto.log.merge(self.log)
        proto.log.purge()


class _VectorToken(_Token):
    def __init__(self, n: int) -> None:
        self.v = np.zeros(n, dtype=np.int64)

    def _site_vector(self, proto: CausalProtocol) -> np.ndarray:
        if isinstance(proto, OptTrackCrpProtocol):
            return proto.apply_clocks
        if isinstance(proto, (OptPProtocol, AhamadProtocol)):
            return proto.apply_counts
        raise ConfigurationError(f"unsupported protocol {type(proto).__name__}")

    def covered_by(self, proto: CausalProtocol) -> bool:
        return bool(np.all(self._site_vector(proto) >= self.v))

    def absorb_site(self, proto: CausalProtocol) -> None:
        np.maximum(self.v, self._site_vector(proto), out=self.v)

    def push_to_site(self, proto: CausalProtocol) -> None:
        # Writes-follow-reads: the client's next write at this site must
        # piggyback the client's causal past, so other sites order it
        # after everything the client has seen.  Inject the token into the
        # structure each protocol piggybacks on writes.
        if isinstance(proto, OptTrackCrpProtocol):
            for z in range(proto.n):
                c = int(self.v[z])
                if c > proto.log.get(z, 0):
                    proto.log[z] = c
        elif isinstance(proto, OptPProtocol):
            np.maximum(proto.write_clock.v, self.v, out=proto.write_clock.v)
        elif isinstance(proto, AhamadProtocol):
            np.maximum(proto.vector_clock.v, self.v, out=proto.vector_clock.v)
        else:  # pragma: no cover - guarded by _make_token
            raise ConfigurationError(f"unsupported protocol {type(proto).__name__}")


def _make_token(proto: CausalProtocol) -> _Token:
    if isinstance(proto, FullTrackProtocol):
        return _MatrixToken(proto.n)
    if isinstance(proto, OptTrackProtocol):
        return _LogToken()
    if isinstance(proto, (OptTrackCrpProtocol, OptPProtocol, AhamadProtocol)):
        return _VectorToken(proto.n)
    raise ConfigurationError(
        f"no session token for protocol {type(proto).__name__}"
    )


class MigratingClient:
    """A client that can re-attach to any datacenter while keeping its
    session guarantees (read-your-writes, monotonic reads, writes-follow-
    reads) on top of the cluster's causal consistency."""

    def __init__(self, cluster: Cluster, site: SiteId, name: str = "client") -> None:
        self.cluster = cluster
        self.site = site
        self.name = name
        self.token = _make_token(cluster.protocols[site])
        self.migrations = 0

    # ------------------------------------------------------------------
    def migrate(self, new_site: SiteId) -> None:
        """Re-attach to ``new_site``.  Cheap: guarantees are enforced
        lazily, per operation."""
        if not (0 <= new_site < self.cluster.n_sites):
            raise ConfigurationError(f"site {new_site} out of range")
        if new_site != self.site:
            self.site = new_site
            self.migrations += 1

    # ------------------------------------------------------------------
    def _wait_covered(self, proto: CausalProtocol) -> None:
        c = self.cluster
        if self.token.covered_by(proto):
            return
        c.sim.run(stop_when=lambda: self.token.covered_by(proto))
        if not self.token.covered_by(proto):
            raise DeadlockError(
                f"{self.name}: site {proto.site} never caught up with the "
                f"session's causal past (lost updates?)"
            )

    def read(self, var: VarId) -> Any:
        return self.read_versioned(var)[0]

    def read_versioned(self, var: VarId) -> Tuple[Any, Optional[WriteId]]:
        proto = self.cluster.protocols[self.site]
        self._wait_covered(proto)
        value, wid = self.cluster.session(self.site).read_versioned(var)
        self.token.absorb_site(proto)
        return value, wid

    def write(self, var: VarId, value: Any) -> WriteId:
        proto = self.cluster.protocols[self.site]
        self._wait_covered(proto)
        self.token.push_to_site(proto)
        wid = self.cluster.session(self.site).write(var, value)
        self.token.absorb_site(proto)
        return wid
