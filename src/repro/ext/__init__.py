"""Section-V extensions: causal+ convergence and availability failover."""

from repro.ext.availability import FailoverReader, ReadOutcome
from repro.ext.convergence import (
    TerminationDetector,
    converge,
    final_values,
    is_convergent,
)
from repro.ext.reconfig import add_replica, remove_replica, replication_factor_of
from repro.ext.sessions import MigratingClient

__all__ = [
    "FailoverReader",
    "MigratingClient",
    "ReadOutcome",
    "TerminationDetector",
    "add_replica",
    "converge",
    "final_values",
    "is_convergent",
    "remove_replica",
    "replication_factor_of",
]
