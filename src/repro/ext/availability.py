"""Availability extension — the paper's Section V failover rule.

    "In our algorithms for partially replicated systems, a read may be
    non-local.  This can affect availability if the process read-from is
    down.  If a non-local read does not respond in a timeout period, then
    a secondary process is contacted.  This provides better availability
    in light of the CAP Theorem."

:class:`FailoverReader` performs a remote read with a timeout; on expiry it
abandons the outstanding fetch and retries against the next replica in
preference order (nearest-first when a topology is configured), walking the
replica list until one answers or all are exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.cluster import Cluster
from repro.types import SiteId, VarId, WriteId


@dataclass
class ReadOutcome:
    """Result of one failover read."""

    value: Any
    write_id: Optional[WriteId]
    served_by: SiteId
    attempts: int
    #: servers tried unsuccessfully before the one that answered
    failed_over: List[SiteId] = field(default_factory=list)
    elapsed: float = 0.0


class FailoverReader:
    """Reads with timeout + secondary-replica failover for one client site."""

    def __init__(self, cluster: Cluster, site: SiteId, timeout: float = 20.0) -> None:
        self.cluster = cluster
        self.site = site
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _server_order(self, var: VarId) -> List[SiteId]:
        reps = list(self.cluster.placement[var])
        topo = self.cluster.config.topology
        if topo is not None:
            reps.sort(key=lambda r: (topo.delay(self.site, r), r))
        return reps

    def read(self, var: VarId) -> ReadOutcome:
        """Read ``var``; local if replicated here, otherwise remote with
        failover.  Raises :class:`~repro.errors.SimulationError` when every
        replica is unreachable."""
        c = self.cluster
        proto = c.sites[self.site].protocol
        started = c.sim.now
        if proto.locally_replicates(var):
            value, wid = proto.read_local(var)
            if c.sanitizer is not None:
                c.sanitizer.on_read(self.site, var, wid, now=c.sim.now)
            if c.history is not None:
                c.history.record_read(self.site, var, value, wid, c.sim.now)
            return ReadOutcome(value, wid, self.site, attempts=1)

        failed: List[SiteId] = []
        servers = [s for s in self._server_order(var) if s != self.site]
        for attempt, server in enumerate(servers, start=1):
            outcome = self._try_server(var, server)
            if outcome is not None:
                value, wid = outcome
                if c.sanitizer is not None:
                    c.sanitizer.on_read(self.site, var, wid, now=c.sim.now)
                if c.history is not None:
                    c.history.record_read(self.site, var, value, wid, c.sim.now)
                return ReadOutcome(
                    value,
                    wid,
                    served_by=server,
                    attempts=attempt,
                    failed_over=failed,
                    elapsed=c.sim.now - started,
                )
            failed.append(server)
        raise SimulationError(
            f"read of {var!r} from site {self.site} failed: no replica of "
            f"{servers} answered within {self.timeout} ms each"
        )

    # ------------------------------------------------------------------
    def _try_server(
        self, var: VarId, server: SiteId
    ) -> Optional[Tuple[Any, Optional[WriteId]]]:
        c = self.cluster
        sim_site = c.sites[self.site]
        proto = sim_site.protocol
        req = proto.make_fetch_request(var, server)
        box: List[Tuple[Any, Optional[WriteId]]] = []
        state = {"timed_out": False, "fetch_id": req.fetch_id}

        def on_reply(reply) -> None:
            if not proto.reply_is_fresh(reply):
                # lenient-mode stale reply: discard without merging and
                # retry the same server; the attempt timeout still bounds
                # the loop (see repro.sim.process)
                retry = proto.make_fetch_request(var, server)
                state["fetch_id"] = retry.fetch_id
                sim_site.send_fetch(retry, on_reply)
                return
            box.append(proto.complete_remote_read(reply))

        sim_site.send_fetch(req, on_reply)
        deadline = c.sim.now + self.timeout

        def on_timeout() -> None:
            state["timed_out"] = True

        handle = c.sim.schedule(self.timeout, on_timeout)
        c.sim.run(stop_when=lambda: bool(box) or state["timed_out"])
        if box:
            handle.cancel()
            return box[0]
        # abandon the fetch: a late reply must not complete a newer read
        sim_site.forget_fetch(state["fetch_id"])
        return None
