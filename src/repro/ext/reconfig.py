"""Quiesced replica reconfiguration: tune ``p`` at runtime, per variable.

The paper motivates partial replication with "``p`` is a tunable
parameter" — but its algorithms assume a *static* placement, and online
reconfiguration under causal consistency is an open problem the paper
explicitly leaves out.  This module provides the safe middle ground real
operators use: **epoch-based reconfiguration on a quiescent system**.

``add_replica(cluster, var, site)``:

1. requires quiescence (no in-flight updates — call ``cluster.settle()``);
2. transfers the variable's current value *and its causal metadata*
   (``LastWriteOn``) from an existing replica to the new site, so reads
   there merge the correct dependencies;
3. installs the new placement at every site atomically (new epoch).

``remove_replica`` is the inverse (dropping the local copy and metadata).
Because the system is quiescent, no update message is ever in flight
across the epoch change, which is precisely the hard case being dodged —
DESIGN.md records this as a deliberate scope cut.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.full_track import FullTrackProtocol
from repro.core.opt_track import OptTrackProtocol
from repro.errors import ConfigurationError, SimulationError, UnknownVariableError
from repro.sim.cluster import Cluster
from repro.types import SiteId, VarId


def _require_quiescent(cluster: Cluster) -> None:
    stuck = [s.site for s in cluster.sites if not s.quiescent]
    if stuck:
        raise SimulationError(
            f"reconfiguration requires quiescence; sites {stuck} have "
            f"buffered work — call cluster.settle() first"
        )


def _install_placement(cluster: Cluster, var: VarId, replicas: Tuple[SiteId, ...]) -> None:
    cluster.placement[var] = replicas
    for proto in cluster.protocols:
        # ProtocolConfig.replicas_of aliases cluster.placement (the same
        # mapping object); each protocol refreshes its own derived caches
        # (replica masks, Full-Track's increment index array, ...)
        proto.placement_changed(var)


def add_replica(
    cluster: Cluster, var: VarId, site: SiteId, source: Optional[SiteId] = None
) -> None:
    """Add ``site`` to ``var``'s replica set, with state + metadata
    transfer from ``source`` (default: the first existing replica)."""
    if var not in cluster.placement:
        raise UnknownVariableError(var)
    replicas = cluster.placement[var]
    if site in replicas:
        raise ConfigurationError(f"site {site} already replicates {var!r}")
    if not (0 <= site < cluster.n_sites):
        raise ConfigurationError(f"site {site} out of range")
    _require_quiescent(cluster)

    src = source if source is not None else replicas[0]
    if src not in replicas:
        raise ConfigurationError(f"source {src} does not replicate {var!r}")
    src_proto = cluster.protocols[src]
    dst_proto = cluster.protocols[site]

    value, wid = src_proto.local_value(var)
    dst_proto._values[var] = (value, wid)

    # causal metadata transfer, per protocol family
    if isinstance(src_proto, FullTrackProtocol):
        meta = src_proto.last_write_on.get(var)
        if meta is not None:
            dst_proto.last_write_on[var] = meta  # frozen snapshot, shareable
            dst_proto._raise_ceiling(var, meta)
        # the new replica has (by fiat of the transfer) "applied" the
        # current value; apply counters stay untouched because no update
        # message was consumed — future updates still arrive in FIFO order
    elif isinstance(src_proto, OptTrackProtocol):
        meta = src_proto.last_write_on.get(var)
        if meta is not None:
            log = meta.copy()
            log.remove_site(site)  # condition 1 for the new holder
            dst_proto.last_write_on[var] = log
            dst_proto._raise_ceiling(var, log)
    else:
        # full-replication protocols never reconfigure (p == n always)
        raise ConfigurationError(
            f"protocol {type(src_proto).__name__} does not support "
            f"partial-replication reconfiguration"
        )

    _install_placement(cluster, var, tuple(sorted((*replicas, site))))


def remove_replica(cluster: Cluster, var: VarId, site: SiteId) -> None:
    """Remove ``site`` from ``var``'s replica set (drops the local copy)."""
    if var not in cluster.placement:
        raise UnknownVariableError(var)
    replicas = cluster.placement[var]
    if site not in replicas:
        raise ConfigurationError(f"site {site} does not replicate {var!r}")
    if len(replicas) == 1:
        raise ConfigurationError(f"cannot remove the last replica of {var!r}")
    _require_quiescent(cluster)

    proto = cluster.protocols[site]
    proto._values.pop(var, None)
    if hasattr(proto, "last_write_on"):
        proto.last_write_on.pop(var, None)
    if hasattr(proto, "_ceiling"):
        proto._ceiling.pop(var, None)

    _install_placement(
        cluster, var, tuple(s for s in replicas if s != site)
    )


def replication_factor_of(cluster: Cluster, var: VarId) -> int:
    """Current number of replicas of ``var``."""
    try:
        return len(cluster.placement[var])
    except KeyError:
        raise UnknownVariableError(var) from None
