"""Shared value types used across the protocol, simulation and store layers.

The paper's system model (Section II) has ``n`` sites, each hosting one
application process, interacting through a shared memory of ``q`` variables.
We identify sites with integers ``0..n-1`` and variables with strings.

A write operation is globally identified by a :class:`WriteId`: the writing
site plus that site's per-site write sequence number (the paper's
``clock_i``).  Write ids let the history recorder reconstruct the read-from
relation exactly, which the causal-consistency checker needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Optional

SiteId = int
VarId = str

#: The paper's initial value "bottom": a read with no causally preceding
#: write returns this sentinel.
BOTTOM: Any = None


@dataclass(frozen=True, slots=True, order=True)
class WriteId:
    """Globally unique identifier of one write operation.

    ``site`` is the writing application process and ``seq`` the value of its
    local write counter (the paper's ``clock_i``) when the write was issued.
    ``seq`` starts at 1 for the first write, matching ``clock_i++`` before
    use in Algorithms 2 and 4.
    """

    site: SiteId
    seq: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"w{self.site}:{self.seq}"


class OpKind(Enum):
    """Kind of an application-level shared-memory operation."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True, slots=True)
class Operation:
    """One application-level operation, as issued by a workload.

    For writes, ``value`` is the value to store.  For reads, ``value`` is
    ignored on input.
    """

    kind: OpKind
    var: VarId
    value: Any = None

    @staticmethod
    def read(var: VarId) -> "Operation":
        return Operation(OpKind.READ, var)

    @staticmethod
    def write(var: VarId, value: Any) -> "Operation":
        return Operation(OpKind.WRITE, var, value)


@dataclass(frozen=True, slots=True)
class OpRecord:
    """A completed operation, as recorded in the global history.

    ``index`` is the position of the operation in its process's local
    history (program order).  For a read, ``write_id`` identifies the write
    whose value was returned (``None`` means the initial value, the paper's
    read of an unwritten variable).  For a write, ``write_id`` identifies
    the write itself.
    """

    site: SiteId
    index: int
    kind: OpKind
    var: VarId
    value: Any
    write_id: Optional[WriteId]
    time: float

    @property
    def is_write(self) -> bool:
        return self.kind is OpKind.WRITE

    @property
    def is_read(self) -> bool:
        return self.kind is OpKind.READ


@dataclass(frozen=True, slots=True)
class ApplyRecord:
    """Record of an update being applied at a site (the ``apply`` event)."""

    site: SiteId
    write_id: WriteId
    var: VarId
    time: float
    #: Simulated time the update message arrived at the site.  ``time -
    #: received_time`` is the activation delay: how long the update sat in
    #: the pending buffer waiting for its activation predicate.
    received_time: float
