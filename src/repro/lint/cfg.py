"""Per-function control-flow graphs over ``ast`` for interleaving analysis.

The asyncio service layer (:mod:`repro.service`) relies on a
*single-writer event loop* discipline: protocol state mutations must be
atomic with respect to task switches, which in asyncio means **no
``await`` between the read and the write of a read-modify-write**.  To
check that mechanically we need two things a flat ``ast.walk`` cannot
give us: the *order* of shared-state accesses along every execution
path, and the *suspension points* (``await`` / ``async for`` /
``async with``) those paths cross.  This module builds exactly that — a
statement-level control-flow graph per function where every node carries
an ordered list of :class:`Event` records:

* ``read`` / ``write`` of a ``self.<attr>`` (the first attribute above
  ``self`` names the shared slot: ``self._fetch.popleft()`` touches
  ``_fetch``);
* ``suspend`` wherever the coroutine may yield to the event loop.

The graph is deliberately over-approximate where Python is dynamic:
both branches of a conditional are explored, exception edges go from
every statement in a ``try`` body to every handler, and short-circuit
operands are treated as always evaluated.  Over-approximation can only
*add* interleavings, so the downstream dataflow
(:mod:`repro.lint.interleave`) stays sound for the hazard it checks.

Known blind spots (shared with the other syntactic rules):

* **aliasing** — ``q = self._fetch; q.popleft()`` is invisible;
* **self-method calls** — ``self._retire(n)`` may mutate anything, the
  callee is analyzed on its own instead;
* **unknown attribute methods** — ``self.transport.listen(...)``
  records no event for ``transport`` (only the curated reader/mutator
  method sets below are classified);
* **nested ``def`` bodies** — closures run at an unknown time and are
  analyzed as their own functions when ``async``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple, Union

#: container/primitive methods that only observe their receiver
READER_METHODS: Set[str] = {
    "get",
    "keys",
    "values",
    "items",
    "copy",
    "count",
    "index",
    "empty",
    "qsize",
    "full",
    "is_set",
    "locked",
    "done",
    "cancelled",
    "result",
    "exception",
    "peer",
}

#: container/primitive methods that mutate their receiver in place
MUTATOR_METHODS: Set[str] = {
    "append",
    "appendleft",
    "extend",
    "extendleft",
    "insert",
    "remove",
    "pop",
    "popleft",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "add",
    "discard",
    "sort",
    "reverse",
    "rotate",
    "put_nowait",
    "set",
    "set_result",
    "set_exception",
}

AnyFunction = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class Event:
    """One ordered access in a CFG node."""

    kind: str  #: ``"read"`` | ``"write"`` | ``"suspend"``
    attr: str  #: shared slot name (``""`` for ``suspend``)
    line: int


@dataclass
class Node:
    """One statement-level basic unit: ordered events + successor ids."""

    index: int
    line: int
    events: List[Event] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)


@dataclass
class CFG:
    """Control-flow graph of one function (entry node is ``nodes[0]``)."""

    name: str
    lineno: int
    nodes: List[Node]

    @property
    def entry(self) -> int:
        return 0

    def suspension_lines(self) -> List[int]:
        """Sorted unique lines at which this function may suspend."""
        lines = {
            ev.line for node in self.nodes for ev in node.events
            if ev.kind == "suspend"
        }
        return sorted(lines)


def self_attr(node: ast.expr) -> Optional[str]:
    """First attribute above ``self`` in a plain chain, else ``None``.

    ``self.x`` and ``self.x.y.z`` both yield ``"x"``; ``self`` alone
    yields ``""``; anything not rooted at a plain ``self`` name yields
    ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self":
        return parts[-1] if parts else ""
    return None


class _EventWalker:
    """Collects ordered events from one expression/statement."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def read(self, attr: str, line: int) -> None:
        self.events.append(Event("read", attr, line))

    def write(self, attr: str, line: int) -> None:
        self.events.append(Event("write", attr, line))

    def suspend(self, line: int) -> None:
        self.events.append(Event("suspend", "", line))

    # -- expressions (Load context) ------------------------------------
    def expr(self, node: Optional[ast.expr]) -> None:
        if node is None:
            return
        if isinstance(node, ast.Await):
            self.expr(node.value)
            self.suspend(node.lineno)
            return
        if isinstance(node, ast.Call):
            self._call(node)
            return
        if isinstance(node, ast.Attribute):
            attr = self_attr(node)
            if attr:
                self.read(attr, node.lineno)
            elif attr is None:
                self.expr(node.value)
            return
        if isinstance(node, ast.Lambda):
            return  # runs later, not on this path
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                self.expr(gen.iter)
                if gen.is_async:
                    self.suspend(node.lineno)
                for cond in gen.ifs:
                    self.expr(cond)
            if isinstance(node, ast.DictComp):
                self.expr(node.key)
                self.expr(node.value)
            else:
                self.expr(node.elt)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr(child)
            elif isinstance(child, (ast.keyword, ast.FormattedValue)):
                self.expr(child.value)

    def _call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            owner = self_attr(func.value)
            if owner is None:
                self.expr(func.value)
            elif owner:  # self.<attr>.method(...)
                if func.attr in READER_METHODS:
                    self.read(owner, func.lineno)
                elif func.attr in MUTATOR_METHODS:
                    self.write(owner, func.lineno)
                # unknown methods: documented blind spot, no event
            # owner == "": self.method(...) — callee analyzed on its own
        elif not isinstance(func, ast.Name):
            self.expr(func)
        for arg in node.args:
            self.expr(arg.value if isinstance(arg, ast.Starred) else arg)
        for kw in node.keywords:
            self.expr(kw.value)

    # -- store targets -------------------------------------------------
    def store(self, target: ast.expr) -> None:
        if isinstance(target, ast.Attribute):
            attr = self_attr(target)
            if attr:
                self.write(attr, target.lineno)
            elif attr is None:
                self.expr(target.value)
        elif isinstance(target, ast.Subscript):
            self.expr(target.slice)
            base = target.value
            attr = self_attr(base) if isinstance(base, ast.Attribute) else None
            if attr:
                self.write(attr, target.lineno)
            else:
                self.expr(base)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for el in target.elts:
                self.store(el)
        elif isinstance(target, ast.Starred):
            self.store(target.value)
        # plain Name: local variable, not shared state


def _stmt_events(stmt: ast.stmt) -> List[Event]:
    """Ordered events of one *simple* statement (no control flow)."""
    w = _EventWalker()
    if isinstance(stmt, ast.Expr):
        w.expr(stmt.value)
    elif isinstance(stmt, ast.Assign):
        w.expr(stmt.value)
        for target in stmt.targets:
            w.store(target)
    elif isinstance(stmt, ast.AnnAssign):
        w.expr(stmt.value)
        w.store(stmt.target)
    elif isinstance(stmt, ast.AugAssign):
        # evaluation order: load target, evaluate value, store target —
        # a fused read+write with no suspension in between unless the
        # value itself awaits
        target = stmt.target
        attr = (
            self_attr(target)
            if isinstance(target, ast.Attribute)
            else self_attr(target.value)
            if isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Attribute)
            else None
        )
        if attr:
            w.read(attr, stmt.lineno)
        w.expr(stmt.value)
        if attr:
            w.write(attr, stmt.lineno)
        elif not isinstance(target, ast.Name):
            w.store(target)
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            w.store(target)
    elif isinstance(stmt, ast.Assert):
        w.expr(stmt.test)
        w.expr(stmt.msg)
    elif isinstance(stmt, ast.Return):
        w.expr(stmt.value)
    elif isinstance(stmt, ast.Raise):
        w.expr(stmt.exc)
        w.expr(stmt.cause)
    # Pass/Break/Continue/Global/Nonlocal/Import*/def/class: no events
    return w.events


def _expr_events(expr: Optional[ast.expr]) -> List[Event]:
    w = _EventWalker()
    w.expr(expr)
    return w.events


class _Builder:
    """Builds the statement-level CFG of one function body."""

    def __init__(self) -> None:
        self.nodes: List[Node] = []
        #: stack of (break_sources, continue_target) for enclosing loops
        self._loops: List[Tuple[List[int], int]] = []

    def new_node(self, line: int, events: Sequence[Event] = ()) -> int:
        idx = len(self.nodes)
        self.nodes.append(Node(idx, line, list(events)))
        return idx

    def link(self, preds: Set[int], node: int) -> None:
        for p in preds:
            succs = self.nodes[p].succs
            if node not in succs:
                succs.append(node)

    # ------------------------------------------------------------------
    def stmts(self, body: Sequence[ast.stmt], preds: Set[int]) -> Set[int]:
        """Wire ``body`` after ``preds``; returns the fall-through exits."""
        cur = set(preds)
        for stmt in body:
            cur = self.stmt(stmt, cur)
            if not cur:  # unreachable fall-through (return/raise/...)
                break
        return cur

    def stmt(self, stmt: ast.stmt, preds: Set[int]) -> Set[int]:
        if isinstance(stmt, ast.If):
            test = self.new_node(stmt.lineno, _expr_events(stmt.test))
            self.link(preds, test)
            then_exits = self.stmts(stmt.body, {test})
            if stmt.orelse:
                else_exits = self.stmts(stmt.orelse, {test})
                return then_exits | else_exits
            return then_exits | {test}

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, preds)

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            events: List[Event] = []
            for item in stmt.items:
                events.extend(_expr_events(item.context_expr))
                if isinstance(stmt, ast.AsyncWith):
                    events.append(Event("suspend", "", stmt.lineno))
            enter = self.new_node(stmt.lineno, events)
            self.link(preds, enter)
            body_exits = self.stmts(stmt.body, {enter})
            for item in stmt.items:
                if item.optional_vars is not None:
                    w = _EventWalker()
                    w.store(item.optional_vars)
                    self.nodes[enter].events.extend(w.events)
            if isinstance(stmt, ast.AsyncWith):
                # __aexit__ is awaited on the way out
                leave = self.new_node(
                    getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno,
                    [Event("suspend", "", stmt.lineno)],
                )
                self.link(body_exits, leave)
                return {leave}
            return body_exits

        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            return self._try(stmt, preds)

        if isinstance(stmt, ast.Match):
            subject = self.new_node(stmt.lineno, _expr_events(stmt.subject))
            self.link(preds, subject)
            exits = {subject}
            for case in stmt.cases:
                exits |= self.stmts(case.body, {subject})
            return exits

        if isinstance(stmt, (ast.Break, ast.Continue)):
            node = self.new_node(stmt.lineno)
            self.link(preds, node)
            if self._loops:
                breaks, cont = self._loops[-1]
                if isinstance(stmt, ast.Break):
                    breaks.append(node)
                else:
                    self.link({node}, cont)
            return set()

        if isinstance(stmt, (ast.Return, ast.Raise)):
            node = self.new_node(stmt.lineno, _stmt_events(stmt))
            self.link(preds, node)
            return set()

        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            # nested definitions run at an unknown later time; async
            # ones get their own CFG from build_cfgs
            node = self.new_node(stmt.lineno)
            self.link(preds, node)
            return {node}

        node = self.new_node(stmt.lineno, _stmt_events(stmt))
        self.link(preds, node)
        return {node}

    def _loop(
        self, stmt: Union[ast.While, ast.For, ast.AsyncFor], preds: Set[int]
    ) -> Set[int]:
        if isinstance(stmt, ast.While):
            events = _expr_events(stmt.test)
        else:
            events = _expr_events(stmt.iter)
            if isinstance(stmt, ast.AsyncFor):
                # __anext__ is awaited on every iteration
                events.append(Event("suspend", "", stmt.lineno))
            w = _EventWalker()
            w.store(stmt.target)
            events.extend(w.events)
        header = self.new_node(stmt.lineno, events)
        self.link(preds, header)
        breaks: List[int] = []
        self._loops.append((breaks, header))
        body_exits = self.stmts(stmt.body, {header})
        self._loops.pop()
        self.link(body_exits, header)  # back edge
        exits = {header} | set(breaks)
        if stmt.orelse:
            exits = self.stmts(stmt.orelse, {header}) | set(breaks)
        return exits

    def _try(self, stmt: ast.stmt, preds: Set[int]) -> Set[int]:
        body = stmt.body  # type: ignore[attr-defined]
        handlers = stmt.handlers  # type: ignore[attr-defined]
        orelse = stmt.orelse  # type: ignore[attr-defined]
        finalbody = stmt.finalbody  # type: ignore[attr-defined]
        before = len(self.nodes)
        body_exits = self.stmts(body, preds)
        body_nodes = set(range(before, len(self.nodes)))
        handler_exits: Set[int] = set()
        for handler in handlers:
            # an exception can surface at any point inside the body
            handler_exits |= self.stmts(handler.body, set(preds) | body_nodes)
        if orelse:
            body_exits = self.stmts(orelse, body_exits)
        exits = body_exits | handler_exits
        if finalbody:
            # over-approximate: the finally can follow any body/handler
            # point (early return, re-raise) as well as the normal exits
            upto = set(range(before, len(self.nodes)))
            exits = self.stmts(finalbody, exits | upto | set(preds))
        return exits


def build_cfg(fn: AnyFunction) -> CFG:
    """Statement-level CFG of ``fn`` (nested ``def`` bodies excluded)."""
    builder = _Builder()
    entry = builder.new_node(fn.lineno)
    builder.stmts(fn.body, {entry})
    return CFG(name=fn.name, lineno=fn.lineno, nodes=builder.nodes)


def build_cfgs(tree: ast.Module, *, async_only: bool = True) -> List[CFG]:
    """CFGs for every (by default async) function in ``tree``, nested
    ones included — each gets its own graph."""
    kinds: Tuple[type, ...] = (
        (ast.AsyncFunctionDef,) if async_only
        else (ast.FunctionDef, ast.AsyncFunctionDef)
    )
    return [build_cfg(node) for node in ast.walk(tree) if isinstance(node, kinds)]


__all__ = [
    "CFG",
    "Event",
    "Node",
    "READER_METHODS",
    "MUTATOR_METHODS",
    "build_cfg",
    "build_cfgs",
    "self_attr",
]
