"""The rule catalog of ``repro-lint`` (see docs/static-analysis.md).

Every rule encodes an invariant this repository has already paid for:

* ``import-layering``   — the package DAG (caught the ``metrics↔sim``
  circular import class);
* ``cow-discipline``    — ``DepLog`` copy-on-write aliasing rules;
* ``unordered-iteration`` / ``entropy-source`` — simulation determinism;
* ``mutable-default`` / ``bare-except``        — generic Python hazards;
* ``blocking-io``       — event-loop stalls in the asyncio service
  (``time.sleep`` / sync sockets in ``repro.service``);
* ``hook-shadow``       — the wake-index contract of
  :class:`repro.core.base.CausalProtocol`.

Rules are syntactic: they inspect one module's AST with no type
inference.  That makes them fast and predictable, at the cost of aliasing
blind spots (``log = msg.meta.log; log.purge()`` is invisible to
``cow-discipline``) — documented per rule below.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import Finding, ModuleContext, Rule
from repro.lint.interleave import AwaitAtomicityRule

# ----------------------------------------------------------------------
# import layering
# ----------------------------------------------------------------------

#: Layer rank per first-level package under ``repro``.  A module-level
#: import may only point at a strictly lower rank (same package is always
#: fine); function-local deferred imports are exempt — they cannot create
#: an import cycle at load time and are this repo's sanctioned escape
#: hatch (e.g. ``metrics.sizes`` registering ``UpdateBatch`` lazily).
LAYERS: Dict[str, int] = {
    "types": 0,
    "errors": 0,
    "core": 1,
    "lint": 1,
    "verify": 2,
    "store": 2,
    # obs sits with verify/store: readable from metrics/sim/analysis/cli;
    # its own deps on verify are function-local deferred imports
    "obs": 2,
    "metrics": 3,
    "sim": 4,
    "workload": 5,
    "ext": 5,
    # service sits above workload (loadgen drives YCSB scripts) and beside
    # analysis; nothing below it may import it
    "service": 6,
    "analysis": 6,
    "cli": 7,
    # the top-level ``repro/__init__`` facade may import anything
    "": 8,
}


def _first_level(module: str) -> Optional[str]:
    """``repro.sim.site`` -> ``sim``; ``repro`` -> ``""``; else None."""
    parts = module.split(".")
    if parts[0] != "repro":
        return None
    return parts[1] if len(parts) > 1 else ""


def _module_level_imports(tree: ast.Module) -> Iterator[Tuple[int, str]]:
    """Yield ``(line, target_module)`` for every import executed at module
    load time — including inside top-level ``if``/``try`` blocks, but not
    inside functions/classes, and not under ``if TYPE_CHECKING:`` (those
    never execute at runtime, so they cannot create a load-time cycle)."""

    def scan(stmts: Sequence[ast.stmt]) -> Iterator[Tuple[int, str]]:
        for node in stmts:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield node.lineno, alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module:
                    yield node.lineno, node.module
            elif isinstance(node, ast.If):
                if "TYPE_CHECKING" in ast.dump(node.test):
                    continue
                yield from scan(node.body)
                yield from scan(node.orelse)
            elif isinstance(node, ast.Try):
                yield from scan(node.body)
                for handler in node.handlers:
                    yield from scan(handler.body)
                yield from scan(node.orelse)
                yield from scan(node.finalbody)
            elif isinstance(node, (ast.With, ast.For, ast.While)):
                yield from scan(node.body)

    yield from scan(tree.body)


class ImportLayeringRule(Rule):
    """Module-level imports must respect the package layer ranking.

    Allowlist payload: ``<importing module> -> <imported package>``, e.g.
    ``repro.store.datastore -> repro.sim``.
    """

    name = "import-layering"
    summary = (
        "module-level imports must point strictly down the package layers "
        "(core never imports sim/analysis/metrics, metrics never imports sim)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        src_pkg = _first_level(ctx.module)
        if src_pkg is None or src_pkg not in LAYERS:
            return
        src_rank = LAYERS[src_pkg]
        allowed = ctx.allowed_payloads(self.name)
        for line, target in _module_level_imports(ctx.tree):
            tgt_pkg = _first_level(target)
            if tgt_pkg is None or tgt_pkg == src_pkg or tgt_pkg not in LAYERS:
                continue
            if LAYERS[tgt_pkg] < src_rank:
                continue
            target_pkg_name = f"repro.{tgt_pkg}" if tgt_pkg else "repro"
            edge_ok = False
            for payload in allowed:
                if self._matches(payload, ctx.module, target):
                    ctx.mark_allow_used(self.name, payload)
                    edge_ok = True
            if edge_ok:
                continue
            yield Finding(
                self.name,
                ctx.path,
                line,
                f"{ctx.module} (layer {src_rank}: {src_pkg or 'repro'}) must "
                f"not import {target} (layer {LAYERS[tgt_pkg]}: "
                f"{target_pkg_name}); move the import into the function that "
                f"needs it, invert the dependency, or allowlist the edge",
            )

    @staticmethod
    def _matches(payload: str, module: str, target: str) -> bool:
        if "->" not in payload:
            return False
        src, _, dst = (p.strip() for p in payload.partition("->"))
        return module == src and (target == dst or target.startswith(dst + "."))


# ----------------------------------------------------------------------
# DepLog copy-on-write discipline
# ----------------------------------------------------------------------

#: dict mutators that would bypass ``DepLog._own``
_DICT_MUTATORS = {"update", "pop", "clear", "setdefault", "popitem"}
#: DepLog methods that mutate in place (must never run on a piggybacked
#: ``*.meta.log`` — copy first)
_DEPLOG_MUTATORS = {
    "add",
    "prune_dests",
    "remove_site",
    "purge",
    "retire",
    "merge",
    "absorb",
}
#: DepLog-internal attributes nothing outside core/log.py may write
_DEPLOG_INTERNALS = {"entries", "_latest", "_dests"}


def _attr_chain(node: ast.expr) -> List[str]:
    """``a.b.c`` -> ``["a", "b", "c"]`` (empty when not a plain chain)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


class CowDisciplineRule(Rule):
    """No in-place mutation of ``DepLog`` internals outside ``core/log.py``.

    Flags, everywhere except the exempt module:

    * writes to ``<x>.entries`` / ``<x>._latest`` / ``<x>._dests``
      (assignment, augmented assignment, ``del``, subscript stores);
    * dict mutators called on those attributes
      (``log.entries.update(...)``);
    * ``DepLog`` mutating methods invoked directly on a piggybacked log
      (``msg.meta.log.purge()`` — shared copy-on-write state; take a
      ``.copy()`` first).

    Syntactic only: aliasing (``log = msg.meta.log; log.purge()``) is not
    tracked.
    """

    name = "cow-discipline"
    summary = "DepLog internals may only be mutated inside repro.core.log"
    exempt_modules = {"repro.core.log"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module in self.exempt_modules:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    hit = self._internal_write(target)
                    if hit:
                        yield Finding(
                            self.name,
                            ctx.path,
                            node.lineno,
                            f"in-place write to DepLog internal {hit!r} "
                            f"outside repro.core.log breaks the "
                            f"copy-on-write sharing contract",
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    hit = self._internal_write(target)
                    if hit:
                        yield Finding(
                            self.name,
                            ctx.path,
                            node.lineno,
                            f"del on DepLog internal {hit!r} outside "
                            f"repro.core.log breaks the copy-on-write "
                            f"sharing contract",
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                method = node.func.attr
                owner = node.func.value
                if method in _DICT_MUTATORS and isinstance(
                    owner, ast.Attribute
                ):
                    if owner.attr in _DEPLOG_INTERNALS:
                        yield Finding(
                            self.name,
                            ctx.path,
                            node.lineno,
                            f"mutating call .{owner.attr}.{method}(...) on "
                            f"DepLog internals outside repro.core.log",
                        )
                elif method in _DEPLOG_MUTATORS:
                    chain = _attr_chain(owner)
                    if len(chain) >= 2 and chain[-2:] == ["meta", "log"]:
                        yield Finding(
                            self.name,
                            ctx.path,
                            node.lineno,
                            f"{'.'.join(chain)}.{method}(...) mutates a "
                            f"piggybacked DepLog in place — the message "
                            f"meta is shared copy-on-write state; call "
                            f".copy() first",
                        )

    @staticmethod
    def _internal_write(target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute) and target.attr in _DEPLOG_INTERNALS:
            # ``self.entries = ...`` inside DepLog methods is exempt via
            # the module check; everywhere else any owner is suspect
            return target.attr
        return None


# ----------------------------------------------------------------------
# determinism hazards
# ----------------------------------------------------------------------

_SET_BUILTINS = {"set", "frozenset"}


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _SET_BUILTINS
    return False


class UnorderedIterationRule(Rule):
    """No direct iteration over set expressions in ``sim``/``core``.

    Event scheduling and message emission must be bit-for-bit
    deterministic (the drain-equivalence and parallel-runner property
    tests depend on it); iterating a ``set`` hands the iteration order to
    the hash seed.  Wrap the expression in ``sorted(...)`` or use an
    order-preserving container.  Syntactic only: a *variable* holding a
    set is not flagged, the set must be built at the iteration site.
    """

    name = "unordered-iteration"
    summary = "iteration over set expressions in repro.sim/repro.core"
    # tests/benchmarks assert on deterministic output, so the same
    # iteration-order discipline applies there
    scoped_prefixes = ("repro.sim", "repro.core", "tests", "benchmarks")
    module_allow = True

    def scan(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module.startswith(self.scoped_prefixes):
            return
        for node in ast.walk(ctx.tree):
            iters: List[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and node.args
            ):
                iters.append(node.args[0])
            for it in iters:
                if _is_set_expr(it):
                    yield Finding(
                        self.name,
                        ctx.path,
                        it.lineno,
                        "iteration over an unordered set expression in the "
                        "deterministic simulation core — wrap it in "
                        "sorted(...) or keep an ordered container",
                    )


#: stdlib entropy/wall-clock sources forbidden in the deterministic core
_ENTROPY_MODULES = {"random", "secrets"}
_ENTROPY_CALLS = {
    "time": {"time", "monotonic", "perf_counter", "time_ns", "process_time"},
    "os": {"urandom", "getrandom"},
    "uuid": {"uuid1", "uuid4"},
}


class EntropySourceRule(Rule):
    """No wall-clock or OS entropy in the deterministic packages.

    Simulated time comes from :class:`repro.sim.engine.Simulator`;
    randomness comes from seeded ``numpy`` generators threaded through
    :class:`~repro.sim.cluster.ClusterConfig`.  ``repro.sim.latency`` (the
    one place jitter is drawn) and the workload generators are exempt;
    add further exemptions as allowlist payloads naming the module.
    """

    name = "entropy-source"
    summary = (
        "random/time/os.urandom forbidden in repro.core/sim/store/"
        "verify/metrics (except sim.latency)"
    )
    scoped_prefixes = (
        "repro.core",
        "repro.sim",
        "repro.store",
        "repro.verify",
        "repro.metrics",
        # seeded reproducibility matters just as much in the suites that
        # assert on simulator output and the benchmarks that feed the
        # checked-in ledgers
        "tests",
        "benchmarks",
    )
    exempt_modules = {"repro.sim.latency"}
    module_allow = True

    def scan(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module.startswith(self.scoped_prefixes):
            return
        if ctx.module in self.exempt_modules:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _ENTROPY_MODULES:
                        yield Finding(
                            self.name,
                            ctx.path,
                            node.lineno,
                            f"import of entropy module {alias.name!r} in the "
                            f"deterministic core — draw from the cluster's "
                            f"seeded RNG streams instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _ENTROPY_MODULES:
                    yield Finding(
                        self.name,
                        ctx.path,
                        node.lineno,
                        f"import from entropy module {node.module!r} in the "
                        f"deterministic core",
                    )
            elif isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ):
                if node.attr in _ENTROPY_CALLS.get(node.value.id, ()):
                    yield Finding(
                        self.name,
                        ctx.path,
                        node.lineno,
                        f"{node.value.id}.{node.attr} in the deterministic "
                        f"core — use simulated time "
                        f"(Simulator.now) or a seeded RNG stream",
                    )


# ----------------------------------------------------------------------
# generic hazards
# ----------------------------------------------------------------------


class MutableDefaultRule(Rule):
    """Mutable default argument values (shared across calls)."""

    name = "mutable-default"
    summary = "list/dict/set default argument values"

    _LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    _CTORS = {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._mutable(default):
                    fn = getattr(node, "name", "<lambda>")
                    yield Finding(
                        self.name,
                        ctx.path,
                        default.lineno,
                        f"mutable default argument in {fn!r} is shared "
                        f"across calls — default to None and build inside",
                    )

    def _mutable(self, node: ast.expr) -> bool:
        if isinstance(node, self._LITERALS):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._CTORS
        return False


class BareExceptRule(Rule):
    """``except:`` swallows ``KeyboardInterrupt``/``SystemExit`` and every
    protocol-invariant error this package raises on purpose."""

    name = "bare-except"
    summary = "bare except clauses"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield Finding(
                    self.name,
                    ctx.path,
                    node.lineno,
                    "bare 'except:' — name the exceptions (ReproError "
                    "covers everything this package raises)",
                )


# ----------------------------------------------------------------------
# ad-hoc logging
# ----------------------------------------------------------------------


class AdHocLoggingRule(Rule):
    """No ``print()`` or ``logging`` in the protocol and simulation layers.

    Anything worth reporting from ``repro.core``/``repro.sim`` is
    telemetry and must flow through ``repro.obs`` (a lifecycle recorder
    hook or a registry metric): stdout writes corrupt CLI output that is
    meant to be piped, and both are invisible to the trace/replay
    machinery.  Syntactic only: aliased prints (``p = print``) are not
    caught.
    """

    name = "adhoc-logging"
    summary = "print()/logging forbidden in repro.core/sim — use repro.obs"
    scoped_prefixes = ("repro.core", "repro.sim")
    module_allow = True

    def scan(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module.startswith(self.scoped_prefixes):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield Finding(
                    self.name,
                    ctx.path,
                    node.lineno,
                    "print() in the protocol/simulation layer — emit a "
                    "repro.obs recorder event or registry metric instead",
                )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "logging":
                        yield Finding(
                            self.name,
                            ctx.path,
                            node.lineno,
                            "logging import in the protocol/simulation "
                            "layer — use repro.obs telemetry instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "").split(".")[0] == "logging":
                    yield Finding(
                        self.name,
                        ctx.path,
                        node.lineno,
                        "logging import in the protocol/simulation layer "
                        "— use repro.obs telemetry instead",
                    )


# ----------------------------------------------------------------------
# blocking I/O in the asyncio service
# ----------------------------------------------------------------------

#: synchronous I/O modules that stall the event loop when used from
#: service code (asyncio streams replace them)
_BLOCKING_IO_MODULES = {"socket", "socketserver", "selectors"}


class BlockingIoRule(Rule):
    """No blocking I/O inside the asyncio service package.

    ``repro.service`` is single-threaded asyncio: one ``time.sleep`` (or a
    synchronous ``socket`` call) freezes every site co-hosted on the loop
    — in the loopback tests that is the *whole cluster*, and the failure
    mode is a silent latency cliff rather than an error.  Flags:

    * ``time.sleep(...)`` anywhere in the package (coroutine or helper:
      helpers run on the loop too) — use ``asyncio.sleep``;
    * module-level or local imports of the synchronous socket machinery
      (``socket``, ``socketserver``, ``selectors``) — go through
      :mod:`repro.service.transport`, which wraps asyncio streams.

    Syntactic only: ``from time import sleep`` is caught, an aliased
    ``s = time.sleep; s()`` is not.  Allowlist payload: the module name.
    """

    name = "blocking-io"
    summary = "time.sleep / sync socket forbidden in repro.service (asyncio)"
    scoped_prefixes = ("repro.service",)
    module_allow = True

    def scan(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module.startswith(self.scoped_prefixes):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                if node.value.id == "time" and node.attr == "sleep":
                    yield Finding(
                        self.name,
                        ctx.path,
                        node.lineno,
                        "time.sleep blocks the event loop and with it every "
                        "co-hosted site — await asyncio.sleep(...) instead",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in _BLOCKING_IO_MODULES:
                        yield Finding(
                            self.name,
                            ctx.path,
                            node.lineno,
                            f"synchronous {alias.name!r} import in the asyncio "
                            f"service — use repro.service.transport (asyncio "
                            f"streams)",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _BLOCKING_IO_MODULES:
                    yield Finding(
                        self.name,
                        ctx.path,
                        node.lineno,
                        f"synchronous import from {node.module!r} in the "
                        f"asyncio service — use repro.service.transport "
                        f"(asyncio streams)",
                    )
                elif root == "time" and any(
                    alias.name == "sleep" for alias in node.names
                ):
                    yield Finding(
                        self.name,
                        ctx.path,
                        node.lineno,
                        "importing time.sleep into the asyncio service — "
                        "await asyncio.sleep(...) instead",
                    )


# ----------------------------------------------------------------------
# durability seam discipline
# ----------------------------------------------------------------------

#: ``os`` entry points that create or force file state — only the
#: durability seam may call them from service code
_DURABILITY_OS_CALLS = {"open", "fsync", "fdatasync"}

#: service modules allowed raw file I/O: the WAL/snapshot seam itself,
#: and the bench ledger writer (operator-facing output, not site state)
_DURABILITY_EXEMPT = {
    "repro.service.durability",
    "repro.service.bench",
}


class DurabilityIoRule(Rule):
    """All file I/O in the service goes through the durability seam.

    Crash safety is argued once, in :mod:`repro.service.durability`: its
    write paths pair every mutation with the fsync/rename discipline the
    recovery tests assume (torn-tail truncation, snapshot-then-unlink
    commit order, directory fsync after rename).  A raw ``open`` or
    ``os.fsync`` elsewhere in ``repro.service`` creates durable state
    the recovery path does not know how to replay or repair — and a
    *synchronous* ``open``/``fsync`` on the event loop stalls every
    co-hosted site for the duration of the disk flush.  Flags, in any
    service module other than the seam and the bench ledger writer:

    * calls to the ``open`` builtin;
    * ``io.open`` / ``os.open`` / ``os.fsync`` / ``os.fdatasync``
      attribute uses (caught at the attribute, so aliasing
      ``f = os.fsync`` is reported at the alias site).

    Syntactic only: an aliased ``o = open; o(path)`` is not caught, and
    ``pathlib``'s ``.open()``/``.write_bytes()`` methods are out of
    scope.  Allowlist payload: the module name.
    """

    name = "durability-io"
    summary = (
        "raw open/os.fsync in repro.service — file I/O belongs to the "
        "repro.service.durability seam"
    )
    scoped_prefixes = ("repro.service",)
    exempt_modules = _DURABILITY_EXEMPT
    module_allow = True

    def scan(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module.startswith(self.scoped_prefixes):
            return
        if ctx.module in self.exempt_modules:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "open"
            ):
                yield Finding(
                    self.name,
                    ctx.path,
                    node.lineno,
                    "raw open() in the service — durable state must be "
                    "written through repro.service.durability, where the "
                    "crash-recovery contract (CRC records, torn-tail "
                    "truncation, snapshot commit order) is enforced and "
                    "tested",
                )
            elif isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ):
                if node.value.id in ("os", "io") and node.attr in (
                    _DURABILITY_OS_CALLS
                ):
                    yield Finding(
                        self.name,
                        ctx.path,
                        node.lineno,
                        f"{node.value.id}.{node.attr} in the service — "
                        f"file I/O and flush discipline belong to the "
                        f"repro.service.durability seam (and a synchronous "
                        f"fsync on the event loop stalls every co-hosted "
                        f"site)",
                    )


# ----------------------------------------------------------------------
# wire codec discipline
# ----------------------------------------------------------------------

#: ``json`` module entry points that would serialize frames outside the
#: negotiated codec machinery
_JSON_SERDE = {"dumps", "loads", "dump", "load"}

#: service modules allowed to touch ``json`` directly: the codec module
#: itself, and the human-facing edges (CLI snapshot printing, the bench
#: ledger writer) whose JSON never crosses a peer or client connection
_WIRE_EXEMPT = {
    "repro.service.wire",
    "repro.service.cli",
    "repro.service.bench",
}


class WireCodecRule(Rule):
    """No raw ``json`` serialization on the service wire path.

    Every frame that crosses a connection must go through
    :mod:`repro.service.wire` — the codec registry is what makes the
    WIRE_VERSION 3 negotiation sound (a hand-rolled ``json.dumps`` in
    ``transport``/``server``/``client`` would silently bypass the
    negotiated binary codec, and its frames would fail the length-prefix
    + magic-byte sniffing on the other side).  Flags, in any
    ``repro.service`` module other than the exempt edges:

    * ``import json`` / ``from json import ...``;
    * attribute calls ``json.dumps``/``loads``/``dump``/``load``
      (caught even without the import, e.g. via an injected module).

    Syntactic only: an aliased ``d = json.dumps; d(frame)`` is caught at
    the alias site, not the call.  Allowlist payload: the module name.
    """

    name = "wire-codec"
    summary = (
        "raw json serialization on the service wire path — all frames "
        "must go through repro.service.wire codecs"
    )
    scoped_prefixes = ("repro.service",)
    exempt_modules = _WIRE_EXEMPT
    module_allow = True

    def scan(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module.startswith(self.scoped_prefixes):
            return
        if ctx.module in self.exempt_modules:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "json":
                        yield Finding(
                            self.name,
                            ctx.path,
                            node.lineno,
                            "json import on the service wire path — frames "
                            "must travel through the repro.service.wire "
                            "codec registry (the negotiated binary profile "
                            "depends on it)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "").split(".")[0] == "json":
                    yield Finding(
                        self.name,
                        ctx.path,
                        node.lineno,
                        "import from json on the service wire path — use "
                        "the repro.service.wire codec registry",
                    )
            elif isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ):
                if node.value.id == "json" and node.attr in _JSON_SERDE:
                    yield Finding(
                        self.name,
                        ctx.path,
                        node.lineno,
                        f"json.{node.attr} on the service wire path would "
                        f"bypass the negotiated codec — encode through "
                        f"repro.service.wire instead",
                    )


# ----------------------------------------------------------------------
# protocol hook shadowing
# ----------------------------------------------------------------------

#: boolean predicate -> the wake-index hook that must track it (see the
#: contract in repro.core.base: an inherited hook that disagrees with an
#: overridden predicate parks or wakes buffered items incorrectly)
_PRED_TO_HOOK = {
    "can_apply": "blocking_deps",
    "can_serve_fetch": "blocking_fetch_deps",
    "can_read_local": "blocking_read_deps",
}
_ALL_HOOK_NAMES = set(_PRED_TO_HOOK) | set(_PRED_TO_HOOK.values()) | {
    "apply_update",
    "apply_progress",
    "write",
    "read_local",
    "serve_fetch",
    "complete_remote_read",
    "make_fetch_request",
    "meta_objects",
}


def _base_names(cls: ast.ClassDef) -> List[str]:
    names = []
    for base in cls.bases:
        chain = _attr_chain(base)
        if chain:
            names.append(chain[-1])
        elif isinstance(base, ast.Name):
            names.append(base.id)
    return names


class HookShadowRule(Rule):
    """Protocol subclasses must keep predicates and wake-index hooks in
    sync, and must not shadow hook names with class attributes.

    * In a subclass of a *concrete* protocol (base name ends in
      ``Protocol`` but is not ``CausalProtocol``), overriding a boolean
      predicate (``can_apply``/``can_serve_fetch``/``can_read_local``)
      without also overriding its ``blocking_*`` hook inherits an index
      that disagrees with the new predicate.
    * In any ``*Protocol`` subclass, a plain assignment to a hook name
      (``can_apply = True``) silently replaces a method with a value.
    """

    name = "hook-shadow"
    summary = "protocol predicate overridden without its blocking_* hook"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = _base_names(node)
            protocol_bases = [b for b in bases if b.endswith("Protocol")]
            if not protocol_bases:
                continue
            defined = {
                stmt.name
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for stmt in node.body:
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id in _ALL_HOOK_NAMES
                        ):
                            yield Finding(
                                self.name,
                                ctx.path,
                                stmt.lineno,
                                f"class attribute {target.id!r} shadows the "
                                f"protocol hook of the same name in "
                                f"{node.name}",
                            )
            concrete = [b for b in protocol_bases if b != "CausalProtocol"]
            if not concrete:
                continue
            for pred, hook in _PRED_TO_HOOK.items():
                if pred in defined and hook not in defined:
                    yield Finding(
                        self.name,
                        ctx.path,
                        node.lineno,
                        f"{node.name} overrides {pred!r} but inherits "
                        f"{hook!r} from {concrete[0]} — the inherited wake "
                        f"index will park or wake buffered items against "
                        f"the new predicate; override {hook!r} too",
                    )


# ----------------------------------------------------------------------
# v4 delta-chain / intern state discipline
# ----------------------------------------------------------------------

#: per-connection WIRE_VERSION 4 state: delta-chain encoder/decoder
#: baselines and the negotiated intern tables
_DELTA_STATE_ATTRS = {"_delta_out", "_delta_in", "_itab", "_itabs"}

#: the connection-lifecycle sites allowed to (re)build that state:
#: construction, the handshake that negotiates it, the epoch reset that
#: discards a stale chain, and the contiguous-decode path that lazily
#: creates a per-sender decoder.  Everything else must treat the state
#: as read-only — an ad-hoc reset desynchronizes the two chain ends and
#: the next repl.delta reconstructs the wrong metadata.
_DELTA_STATE_ALLOWED = {
    "repro.service.server": {
        ("PeerLink", "__init__"),
        ("PeerLink", "_handshake"),
        ("SiteServer", "__init__"),
        ("SiteServer", "_decode_repl"),
        ("SiteServer", "_handle_hello"),
    },
    "repro.service.client": {
        ("KVClient", "__init__"),
        ("KVClient", "_negotiate"),
    },
}


class WireDeltaStateRule(Rule):
    """v4 delta/intern connection state mutates only on lifecycle paths.

    The ``repl.delta`` chain is sound because both ends advance their
    baseline in lockstep with the frames actually sent and processed,
    and id interning is sound because both directions resolve against
    the table fixed at the handshake.  Any other code path touching
    that state (``_delta_out``/``_delta_in``/``_itab``/``_itabs``)
    breaks the agreement silently — the decoder then applies a diff to
    the wrong baseline or resolves ids against the wrong table.  Flags,
    in any ``repro.service`` module except :mod:`repro.service.wire`
    (which owns the encoder/decoder classes):

    * assignment, augmented assignment, ``del``, and subscript stores
      on those attributes outside the allowed lifecycle sites
      (:data:`_DELTA_STATE_ALLOWED`);
    * container mutators called on them (``x._delta_in.clear()``).

    Syntactic only: aliasing (``dec = self._delta_in[s]; dec.reset()``)
    is not tracked.  Allowlist payload: the module name.
    """

    name = "wire-delta-state"
    summary = (
        "v4 delta-chain/intern state mutated outside repro.service.wire "
        "and the connection lifecycle paths"
    )
    scoped_prefixes = ("repro.service",)
    exempt_modules = {"repro.service.wire"}
    module_allow = True

    def scan(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module.startswith(self.scoped_prefixes):
            return
        if ctx.module in self.exempt_modules:
            return
        allowed = _DELTA_STATE_ALLOWED.get(ctx.module, set())
        yield from self._walk(ctx, ctx.tree, None, None, allowed)

    def _walk(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        klass: Optional[str],
        meth: Optional[str],
        allowed: set,
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            ck, cm = klass, meth
            if isinstance(child, ast.ClassDef):
                ck, cm = child.name, None
            elif (
                isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and cm is None
            ):
                # nested defs stay attributed to the enclosing method
                cm = child.name
            if (ck, cm) not in allowed:
                yield from self._findings(ctx, child)
            yield from self._walk(ctx, child, ck, cm, allowed)

    def _findings(self, ctx: ModuleContext, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                hit = self._state_write(target)
                if hit:
                    yield Finding(
                        self.name,
                        ctx.path,
                        node.lineno,
                        f"write to v4 wire state {hit!r} outside the "
                        f"connection lifecycle paths — the delta chain "
                        f"and intern table only stay in sync when "
                        f"handshake/reset code owns them",
                    )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                hit = self._state_write(target)
                if hit:
                    yield Finding(
                        self.name,
                        ctx.path,
                        node.lineno,
                        f"del on v4 wire state {hit!r} outside the "
                        f"connection lifecycle paths",
                    )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            owner = node.func.value
            if (
                node.func.attr in _DICT_MUTATORS
                and isinstance(owner, ast.Attribute)
                and owner.attr in _DELTA_STATE_ATTRS
            ):
                yield Finding(
                    self.name,
                    ctx.path,
                    node.lineno,
                    f"mutating call .{owner.attr}.{node.func.attr}(...) on "
                    f"v4 wire state outside the connection lifecycle paths",
                )

    @staticmethod
    def _state_write(target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute) and target.attr in _DELTA_STATE_ATTRS:
            return target.attr
        return None


# ----------------------------------------------------------------------
# metric naming discipline
# ----------------------------------------------------------------------

#: registry entry points (and the service layer's thin wrappers around
#: them) whose first string argument is a metric name
_METRIC_METHODS = {"counter", "gauge", "histogram", "metric", "_metric"}

#: snake_case with a unit suffix: the exposition layer and the metric
#: names table in docs/observability.md both key off the suffix telling
#: readers (and dashboards) what the number *is*
_METRIC_NAME_RE = re.compile(
    r"^[a-z][a-z0-9_]*(_total|_ms|_bytes|_count|_ratio)$"
)


class MetricNamingRule(Rule):
    """Service-layer metric names are snake_case with a unit suffix.

    Every metric the service registers is scraped verbatim by the
    Prometheus exposition endpoint and documented in the metric names
    table of ``docs/observability.md`` — a name without a unit suffix
    (``_total`` for counters, ``_ms``/``_bytes``/``_count``/``_ratio``
    for measured values) is ambiguous on a dashboard and drifts from the
    table silently.  Flags, in any ``repro.service`` module: a string
    literal first argument to ``counter``/``gauge``/``histogram`` (the
    :class:`~repro.obs.registry.MetricsRegistry` entry points) or to the
    service's ``metric``/``_metric`` wrappers that does not match
    ``[a-z][a-z0-9_]*`` + unit suffix.

    Syntactic only: names built at runtime (``registry.counter(name)``)
    are not checked — keep them out of the service layer.  Allowlist
    payload: the module name.
    """

    name = "metric-naming"
    summary = (
        "service-layer metric names must be snake_case with a unit "
        "suffix (_total/_ms/_bytes/_count/_ratio)"
    )
    scoped_prefixes = ("repro.service",)
    module_allow = True

    def scan(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module.startswith(self.scoped_prefixes):
            return
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_METHODS
                and node.args
            ):
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue
            if _METRIC_NAME_RE.match(first.value):
                continue
            yield Finding(
                self.name,
                ctx.path,
                first.lineno,
                f"metric name {first.value!r} breaks the naming "
                f"discipline — service metrics are snake_case with a "
                f"unit suffix (_total for counters, _ms/_bytes/_count/"
                f"_ratio for values) so the Prometheus exposition and "
                f"the docs/observability.md table stay unambiguous",
            )


#: the default rule set, in catalog order
ALL_RULES: Tuple[Rule, ...] = (
    ImportLayeringRule(),
    CowDisciplineRule(),
    UnorderedIterationRule(),
    EntropySourceRule(),
    MutableDefaultRule(),
    BareExceptRule(),
    AdHocLoggingRule(),
    BlockingIoRule(),
    DurabilityIoRule(),
    WireCodecRule(),
    WireDeltaStateRule(),
    MetricNamingRule(),
    AwaitAtomicityRule(),
    HookShadowRule(),
)

RULES_BY_NAME: Dict[str, Rule] = {r.name: r for r in ALL_RULES}
