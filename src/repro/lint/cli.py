"""``repro-lint`` — run the repository's protocol-aware static checks.

Usage::

    repro-lint [paths...] [--allowlist FILE] [--select rule,rule]
               [--strict-allow] [--json] [--list-rules]

Exit status 0 when clean, 1 when any finding is reported, 2 on usage or
configuration errors (malformed allowlist).  With no paths, lints
``src/repro`` relative to the current directory (falling back to
``repro`` for installed-layout checkouts).

``--strict-allow`` additionally reports allowlist entries and inline
``# lint: allow(...)`` suppressions that silenced nothing — dead
exceptions rot into false documentation, so CI prunes them.  ``--json``
emits the findings as a JSON array (``rule``/``path``/``line``/
``message``/``reason``) for tooling; the human lines move to nowhere
(stdout is the JSON document).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.lint.engine import lint_paths
from repro.lint.rules import ALL_RULES, RULES_BY_NAME

#: one-line rationale per engine-level pseudo rule (real rules carry
#: their ``summary``); the ``reason`` field of ``--json`` output
_ENGINE_RULE_REASONS = {
    "syntax": "file must parse before any rule can run",
    "suppression-format": "inline suppressions must carry their reason",
    "unused-suppression": "a suppression that silences nothing is stale",
    "unused-allow": "an allowlist entry that matches nothing is stale",
}


def _reason_for(rule: str) -> str:
    known = RULES_BY_NAME.get(rule)
    if known is not None:
        return known.summary
    return _ENGINE_RULE_REASONS.get(rule, "")


def _default_paths() -> List[Path]:
    for candidate in (Path("src/repro"), Path("repro")):
        if candidate.is_dir():
            return [candidate]
    return []


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="protocol-aware static checks for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--allowlist",
        type=Path,
        default=None,
        metavar="FILE",
        help="allowlist file (default: auto-discover .lint-allow upward)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--strict-allow",
        action="store_true",
        help="also report allowlist entries and inline suppressions "
        "that matched zero findings in this run",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit findings as a JSON array of "
        "{rule, path, line, message, reason} objects",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        width = max(len(r.name) for r in ALL_RULES)
        for rule in ALL_RULES:
            print(f"{rule.name:<{width}}  {rule.summary}")
        return 0

    rules = list(ALL_RULES)
    if args.select:
        names = [n.strip() for n in args.select.split(",") if n.strip()]
        unknown = [n for n in names if n not in RULES_BY_NAME]
        if unknown:
            print(
                f"repro-lint: unknown rule(s): {', '.join(unknown)} "
                f"(see --list-rules)",
                file=sys.stderr,
            )
            return 2
        rules = [RULES_BY_NAME[n] for n in names]

    paths = args.paths or _default_paths()
    if not paths:
        print(
            "repro-lint: no paths given and no src/repro here", file=sys.stderr
        )
        return 2

    try:
        findings = lint_paths(
            paths, rules, allowlist=args.allowlist, strict=args.strict_allow
        )
    except ConfigurationError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.as_json:
        print(
            json.dumps(
                [
                    {
                        "rule": f.rule,
                        "path": f.path,
                        "line": f.line,
                        "message": f.message,
                        "reason": _reason_for(f.rule),
                    }
                    for f in findings
                ],
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding)
    if findings:
        n = len(findings)
        print(f"repro-lint: {n} finding{'s' if n != 1 else ''}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
