"""The ``repro-lint`` engine: files, suppressions, allowlists, rules.

The linter is a small AST-walking framework purpose-built for this
repository.  Generic Python linters cannot know that ``DepLog`` copies are
copy-on-write, that the simulation must be bit-for-bit deterministic, or
that ``repro.core`` must never import the simulation layer — those are
*protocol-level* invariants of this codebase, and each has already cost a
debugging session (the ``metrics↔sim`` circular import, the ``DepLog``
aliasing discipline, the parallel runner's determinism requirements).  The
rules in :mod:`repro.lint.rules` encode them mechanically.

Vocabulary
----------

* A :class:`Finding` is one violation: rule, file, line, message.
* A :class:`Rule` inspects one module's AST and yields findings.
* A *suppression* is an inline comment ``# lint: allow(<rule>) — reason``
  on the offending line.  The reason is mandatory: a suppression without
  one is itself reported (rule ``suppression-format``), so every exception
  in the tree is documented where it lives.
* The *allowlist file* (default: ``.lint-allow`` at the repository root)
  holds repository-wide exceptions, one per line::

      <rule>: <payload>  # reason

  e.g. ``import-layering: repro.store.datastore -> repro.sim  # facade``.
  Reasons are mandatory here too.  Each rule interprets its own payload.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError

#: ``# lint: allow(rule-name) — reason`` (em dash, hyphen, or colon before
#: the reason all accepted).  The reason group may be empty — the engine
#: turns that into a finding rather than a silent suppression.
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*allow\(\s*(?P<rule>[a-z0-9_-]+)\s*\)\s*(?:[—:-]+\s*(?P<reason>.*\S)?)?"
)

_ALLOWLIST_RE = re.compile(
    r"^(?P<rule>[a-z0-9_-]+)\s*:\s*(?P<payload>[^#]*?)\s*(?:#\s*(?P<reason>.*\S)\s*)?$"
)


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    rule: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class AllowEntry:
    """One allowlist-file exception: ``rule: payload  # reason``."""

    rule: str
    payload: str
    reason: str


@dataclass
class Suppressions:
    """Per-line inline suppressions of one source file."""

    #: line -> set of rule names allowed on that line
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: suppressions missing the mandatory reason (reported as findings)
    malformed: List[Tuple[int, str]] = field(default_factory=list)

    def allows(self, line: int, rule: str) -> bool:
        return rule in self.by_line.get(line, ())


def parse_suppressions(source: str) -> Suppressions:
    out = Suppressions()
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if m is None:
            continue
        rule = m.group("rule")
        if not m.group("reason"):
            out.malformed.append((lineno, rule))
            continue
        out.by_line.setdefault(lineno, set()).add(rule)
    return out


def parse_allowlist(path: Path) -> List[AllowEntry]:
    entries: List[AllowEntry] = []
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        m = _ALLOWLIST_RE.match(line)
        if m is None:
            raise ConfigurationError(
                f"{path}:{lineno}: malformed allowlist entry {line!r} "
                f"(expected '<rule>: <payload>  # reason')"
            )
        if not m.group("reason"):
            raise ConfigurationError(
                f"{path}:{lineno}: allowlist entry for {m.group('rule')!r} "
                f"is missing its mandatory '# reason' comment"
            )
        entries.append(
            AllowEntry(m.group("rule"), m.group("payload").strip(), m.group("reason"))
        )
    return entries


@dataclass
class ModuleContext:
    """Everything a rule needs about one source file."""

    module: str  #: dotted module name, e.g. ``repro.sim.site``
    path: str  #: display path for findings
    tree: ast.Module
    source: str
    allow: Sequence[AllowEntry] = ()

    def allowed_payloads(self, rule: str) -> List[str]:
        return [e.payload for e in self.allow if e.rule == rule]


class Rule:
    """Base class: subclasses set ``name``/``summary`` and implement
    :meth:`check`."""

    name: str = "abstract"
    summary: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, anchored at the innermost ``src``
    directory (or the first ``repro`` package directory)."""
    parts = list(path.with_suffix("").parts)
    for anchor in ("src", "repro"):
        if anchor in parts:
            i = parts.index(anchor)
            parts = parts[i + 1 :] if anchor == "src" else parts[i:]
            break
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def lint_source(
    source: str,
    rules: Sequence[Rule],
    module: str = "<string>",
    path: str = "<string>",
    allow: Sequence[AllowEntry] = (),
) -> List[Finding]:
    """Lint one in-memory source (the fixture-test entry point)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding("syntax", path, exc.lineno or 1, f"not parseable: {exc.msg}")
        ]
    ctx = ModuleContext(module=module, path=path, tree=tree, source=source, allow=allow)
    suppressions = parse_suppressions(source)
    findings = [
        Finding(
            "suppression-format",
            path,
            line,
            f"suppression of {rule!r} is missing its mandatory reason "
            f"(write '# lint: allow({rule}) — <why>')",
        )
        for line, rule in suppressions.malformed
    ]
    for rule in rules:
        for f in rule.check(ctx):
            if not suppressions.allows(f.line, f.rule):
                findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for p in paths:
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def find_allowlist(start: Path, name: str = ".lint-allow") -> Optional[Path]:
    """Walk upward from ``start`` looking for the allowlist file."""
    cur = start.resolve()
    if cur.is_file():
        cur = cur.parent
    for candidate in (cur, *cur.parents):
        p = candidate / name
        if p.is_file():
            return p
    return None


def lint_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    allowlist: Optional[Path] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; findings sorted by
    location.  ``allowlist=None`` auto-discovers ``.lint-allow`` upward
    from the first path."""
    if allowlist is None and paths:
        allowlist = find_allowlist(Path(paths[0]))
    allow: Sequence[AllowEntry] = parse_allowlist(allowlist) if allowlist else ()
    findings: List[Finding] = []
    for file in iter_python_files(Path(p) for p in paths):
        findings.extend(
            lint_source(
                file.read_text(),
                rules,
                module=module_name_for(file),
                path=str(file),
                allow=allow,
            )
        )
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
