"""The ``repro-lint`` engine: files, suppressions, allowlists, rules.

The linter is a small AST-walking framework purpose-built for this
repository.  Generic Python linters cannot know that ``DepLog`` copies are
copy-on-write, that the simulation must be bit-for-bit deterministic, or
that ``repro.core`` must never import the simulation layer — those are
*protocol-level* invariants of this codebase, and each has already cost a
debugging session (the ``metrics↔sim`` circular import, the ``DepLog``
aliasing discipline, the parallel runner's determinism requirements).  The
rules in :mod:`repro.lint.rules` encode them mechanically.

Vocabulary
----------

* A :class:`Finding` is one violation: rule, file, line, message.
* A :class:`Rule` inspects one module's AST and yields findings.
* A *suppression* is an inline comment ``# lint: allow(<rule>) — reason``
  on the offending line.  The reason is mandatory: a suppression without
  one is itself reported (rule ``suppression-format``), so every exception
  in the tree is documented where it lives.
* The *allowlist file* (default: ``.lint-allow`` at the repository root)
  holds repository-wide exceptions, one per line::

      <rule>: <payload>  # reason

  e.g. ``import-layering: repro.store.datastore -> repro.sim  # facade``.
  Reasons are mandatory here too.  Each rule interprets its own payload.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError

#: ``# lint: allow(rule-name) — reason`` (em dash, hyphen, or colon before
#: the reason all accepted).  The reason group may be empty — the engine
#: turns that into a finding rather than a silent suppression.
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*allow\(\s*(?P<rule>[a-z0-9_-]+)\s*\)\s*(?:[—:-]+\s*(?P<reason>.*\S)?)?"
)

_ALLOWLIST_RE = re.compile(
    r"^(?P<rule>[a-z0-9_-]+)\s*:\s*(?P<payload>[^#]*?)\s*(?:#\s*(?P<reason>.*\S)\s*)?$"
)


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    rule: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class AllowEntry:
    """One allowlist-file exception: ``rule: payload  # reason``."""

    rule: str
    payload: str
    reason: str
    line: int = 0  #: source line in the allowlist file (for findings)


@dataclass
class Suppressions:
    """Per-line inline suppressions of one source file."""

    #: line -> set of rule names allowed on that line
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: suppressions missing the mandatory reason (reported as findings)
    malformed: List[Tuple[int, str]] = field(default_factory=list)
    #: ``(line, rule)`` pairs that actually silenced a finding — the
    #: ``--strict-allow`` pass flags the rest as dead
    used: Set[Tuple[int, str]] = field(default_factory=set)

    def allows(self, line: int, rule: str) -> bool:
        if rule in self.by_line.get(line, ()):
            self.used.add((line, rule))
            return True
        return False


def parse_suppressions(source: str) -> Suppressions:
    out = Suppressions()
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if m is None:
            continue
        rule = m.group("rule")
        if not m.group("reason"):
            out.malformed.append((lineno, rule))
            continue
        out.by_line.setdefault(lineno, set()).add(rule)
    return out


def parse_allowlist(path: Path) -> List[AllowEntry]:
    entries: List[AllowEntry] = []
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        m = _ALLOWLIST_RE.match(line)
        if m is None:
            raise ConfigurationError(
                f"{path}:{lineno}: malformed allowlist entry {line!r} "
                f"(expected '<rule>: <payload>  # reason')"
            )
        if not m.group("reason"):
            raise ConfigurationError(
                f"{path}:{lineno}: allowlist entry for {m.group('rule')!r} "
                f"is missing its mandatory '# reason' comment"
            )
        entries.append(
            AllowEntry(
                m.group("rule"), m.group("payload").strip(), m.group("reason"), lineno
            )
        )
    return entries


@dataclass
class ModuleContext:
    """Everything a rule needs about one source file."""

    module: str  #: dotted module name, e.g. ``repro.sim.site``
    path: str  #: display path for findings
    tree: ast.Module
    source: str
    allow: Sequence[AllowEntry] = ()
    #: shared across the run when ``--strict-allow`` is on: the
    #: ``(rule, payload)`` allowlist entries that suppressed something
    used_allow: Optional[Set[Tuple[str, str]]] = None

    def allowed_payloads(self, rule: str) -> List[str]:
        return [e.payload for e in self.allow if e.rule == rule]

    def mark_allow_used(self, rule: str, payload: str) -> None:
        if self.used_allow is not None:
            self.used_allow.add((rule, payload))


class Rule:
    """Base class: subclasses set ``name``/``summary`` and implement
    :meth:`check` (or :meth:`scan` for module-allowlistable rules)."""

    name: str = "abstract"
    summary: str = ""
    #: rules whose allowlist payload is a bare module name set this; the
    #: engine then still scans allowed modules and marks the entry used
    #: only when it would actually have suppressed a finding — which is
    #: what lets ``--strict-allow`` spot dead entries
    module_allow: bool = False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if self.module_allow and ctx.module in ctx.allowed_payloads(self.name):
            for _ in self.scan(ctx):
                ctx.mark_allow_used(self.name, ctx.module)
                break
            return
        yield from self.scan(ctx)

    def scan(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, anchored at the innermost ``src``
    directory (or the first ``repro`` package directory)."""
    parts = list(path.with_suffix("").parts)
    for anchor in ("src", "repro"):
        if anchor in parts:
            i = parts.index(anchor)
            parts = parts[i + 1 :] if anchor == "src" else parts[i:]
            break
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def lint_source(
    source: str,
    rules: Sequence[Rule],
    module: str = "<string>",
    path: str = "<string>",
    allow: Sequence[AllowEntry] = (),
    *,
    strict: bool = False,
    used_allow: Optional[Set[Tuple[str, str]]] = None,
) -> List[Finding]:
    """Lint one in-memory source (the fixture-test entry point).

    With ``strict=True``, inline suppressions of the *selected* rules
    that silenced nothing are themselves findings (``unused-suppression``)
    — a dead suppression documents an exception that no longer exists.
    ``used_allow`` (shared across a :func:`lint_paths` run) collects the
    allowlist entries that actually fired.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding("syntax", path, exc.lineno or 1, f"not parseable: {exc.msg}")
        ]
    ctx = ModuleContext(
        module=module,
        path=path,
        tree=tree,
        source=source,
        allow=allow,
        used_allow=used_allow,
    )
    suppressions = parse_suppressions(source)
    findings = [
        Finding(
            "suppression-format",
            path,
            line,
            f"suppression of {rule!r} is missing its mandatory reason "
            f"(write '# lint: allow({rule}) — <why>')",
        )
        for line, rule in suppressions.malformed
    ]
    for rule in rules:
        for f in rule.check(ctx):
            if not suppressions.allows(f.line, f.rule):
                findings.append(f)
    if strict:
        selected = {rule.name for rule in rules}
        for line in sorted(suppressions.by_line):
            for rule_name in sorted(suppressions.by_line[line]):
                if rule_name in selected and (line, rule_name) not in suppressions.used:
                    findings.append(
                        Finding(
                            "unused-suppression",
                            path,
                            line,
                            f"suppression of {rule_name!r} matched no finding "
                            f"— the exception it documents no longer exists; "
                            f"delete the comment",
                        )
                    )
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for p in paths:
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def find_allowlist(start: Path, name: str = ".lint-allow") -> Optional[Path]:
    """Walk upward from ``start`` looking for the allowlist file."""
    cur = start.resolve()
    if cur.is_file():
        cur = cur.parent
    for candidate in (cur, *cur.parents):
        p = candidate / name
        if p.is_file():
            return p
    return None


def lint_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    allowlist: Optional[Path] = None,
    *,
    strict: bool = False,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; findings sorted by
    location.  ``allowlist=None`` auto-discovers ``.lint-allow`` upward
    from the first path.

    With ``strict=True`` (the ``--strict-allow`` CLI flag), allowlist
    entries for the selected rules that suppressed nothing across the
    whole run become ``unused-allow`` findings anchored at their line in
    the allowlist file, and dead inline suppressions become
    ``unused-suppression`` findings (see :func:`lint_source`).  An entry
    is only judged when the module its payload governs was actually
    scanned in this run — a ``make lint`` that lints ``src/repro`` and
    ``tests`` in separate invocations must not flag each other's
    entries.
    """
    if allowlist is None and paths:
        allowlist = find_allowlist(Path(paths[0]))
    allow: Sequence[AllowEntry] = parse_allowlist(allowlist) if allowlist else ()
    used_allow: Optional[Set[Tuple[str, str]]] = set() if strict else None
    visited: Set[str] = set()
    findings: List[Finding] = []
    for file in iter_python_files(Path(p) for p in paths):
        module = module_name_for(file)
        visited.add(module)
        findings.extend(
            lint_source(
                file.read_text(),
                rules,
                module=module,
                path=str(file),
                allow=allow,
                strict=strict,
                used_allow=used_allow,
            )
        )
    if strict and used_allow is not None:
        selected = {rule.name for rule in rules}
        for entry in allow:
            # the payload's governing module: the module itself, or the
            # importing side of an ``a -> b`` edge
            payload_module = entry.payload.partition("->")[0].strip()
            if (
                entry.rule in selected
                and payload_module in visited
                and (entry.rule, entry.payload) not in used_allow
            ):
                findings.append(
                    Finding(
                        "unused-allow",
                        str(allowlist),
                        entry.line,
                        f"allowlist entry '{entry.rule}: {entry.payload}' "
                        f"matched no finding in this run — the exception it "
                        f"documents no longer exists; delete the entry",
                    )
                )
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
