"""Protocol-aware static analysis for the repro codebase.

See :mod:`repro.lint.engine` for the framework, :mod:`repro.lint.rules`
for the rule catalog, and docs/static-analysis.md for the narrative.
"""

from repro.lint.engine import (
    AllowEntry,
    Finding,
    ModuleContext,
    Rule,
    lint_paths,
    lint_source,
    parse_allowlist,
    parse_suppressions,
)
from repro.lint.rules import ALL_RULES, RULES_BY_NAME

__all__ = [
    "AllowEntry",
    "Finding",
    "ModuleContext",
    "Rule",
    "ALL_RULES",
    "RULES_BY_NAME",
    "lint_paths",
    "lint_source",
    "parse_allowlist",
    "parse_suppressions",
]
