"""The ``await-atomicity`` interleaving-hazard analysis.

The service layer's single-writer discipline (docs/service.md) says:
between reading a piece of shared per-site state (``self.<attr>`` on
``SiteServer`` / ``PeerLink`` / ``KVClient`` / the transports / the v4
delta-codec state) and writing a value derived from that read, an async
function must not suspend — another task scheduled in the gap sees (or
mutates) the same state, and the resumed write clobbers it.  That torn
read-modify-write is precisely the bug class behind double-applied
parked updates, mis-advanced delta baselines, and torn ack bookkeeping.

The analysis runs a forward dataflow over the per-function CFG of
:mod:`repro.lint.cfg`.  Per shared attribute the abstract state is a
three-level lattice::

    FRESH (0)  --read-->  READ (1)  --suspend-->  STALE (2)

* a *read* (re)sets the attribute to ``READ`` — re-reading after an
  ``await`` is the sanctioned lock-free fix, and the analysis honours
  it by construction;
* a *suspension* promotes every ``READ`` attribute to ``STALE``;
* a *write* while ``STALE`` is the hazard: the value being written was
  derived from a read on the other side of a suspension point.  Any
  write resets the attribute to ``FRESH``.

Augmented assignment is a fused read+write (``self._waiting -= 1`` is
atomic on the event loop), so counters never fire.  Transfer functions
are monotone on the lattice and the join is a pointwise max, so the
fixpoint iteration terminates; hazards are collected in a final stable
pass and reported once per ``(attribute, write line)``.

Two declared-critical-section forms silence a hazard when the read, the
suspension, and the write all sit inside one region:

* ``async with self.<lock>:`` — a held ``asyncio.Lock``/``Condition``
  serializes the section against every other task that respects the
  same lock;
* a ``# lint: atomic — reason`` comment on the first line of any
  statement (including an ``async def`` header, which covers the whole
  function) — for sections that are safe by a protocol argument the
  analyzer cannot see (e.g. a single consumer task popping exactly the
  prefix it already sent).  The reason is mandatory; a bare marker is
  itself reported.

Blind spots are inherited from :mod:`repro.lint.cfg` (aliasing,
self-method calls, unclassified attribute methods) and documented in
docs/static-analysis.md.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.cfg import CFG, build_cfg, self_attr
from repro.lint.engine import Finding, ModuleContext, Rule

#: ``# lint: atomic — reason`` (em dash, hyphen, or colon accepted).
#: The marker must sit on the first line of the statement it covers.
_ATOMIC_RE = re.compile(
    r"#\s*lint:\s*atomic\b\s*(?:[—:-]+\s*(?P<reason>.*\S)?)?"
)

FRESH, READ, STALE = 0, 1, 2

#: per-attribute abstract value: (level, read_line, suspend_line)
_AttrState = Tuple[int, int, int]
_State = Dict[str, _AttrState]


@dataclass(frozen=True)
class Hazard:
    """One torn read-modify-write across a suspension point."""

    function: str
    attr: str
    read_line: int
    suspend_line: int
    write_line: int


@dataclass(frozen=True)
class Region:
    """An inclusive line range in which a hazard is declared safe."""

    start: int
    end: int
    kind: str  #: ``"atomic"`` | ``"lock"``

    def covers(self, hazard: Hazard) -> bool:
        return (
            self.start <= hazard.read_line <= self.end
            and self.start <= hazard.suspend_line <= self.end
            and self.start <= hazard.write_line <= self.end
        )


def atomic_regions(
    tree: ast.Module, source: str
) -> Tuple[List[Region], List[int]]:
    """``# lint: atomic — reason`` regions of a module.

    Returns ``(regions, malformed)`` where ``malformed`` lists marker
    lines missing the mandatory reason.  A marker attaches to the
    outermost statement whose first line carries it; the region spans
    that statement's full extent (so a marker on an ``async def`` line
    declares the whole function atomic).
    """
    markers: Dict[int, bool] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _ATOMIC_RE.search(text)
        if m is not None:
            markers[lineno] = bool(m.group("reason"))
    if not markers:
        return [], []
    spans: Dict[int, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        line = node.lineno
        if line in markers:
            end = getattr(node, "end_lineno", line) or line
            spans[line] = max(spans.get(line, line), end)
    regions = [
        Region(line, spans.get(line, line), "atomic")
        for line, ok in markers.items()
        if ok
    ]
    malformed = sorted(line for line, ok in markers.items() if not ok)
    return regions, malformed


def lock_regions(fn: ast.AST) -> List[Region]:
    """``async with self.<lock>:`` critical sections inside ``fn``."""
    regions: List[Region] = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.AsyncWith):
            continue
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Attribute) and self_attr(expr):
                end = getattr(node, "end_lineno", node.lineno) or node.lineno
                regions.append(Region(node.lineno, end, "lock"))
                break
    return regions


def _join(a: Optional[_State], b: _State) -> _State:
    if a is None:
        return dict(b)
    out = dict(a)
    for attr, vb in b.items():
        va = out.get(attr)
        if va is None or vb[0] > va[0] or (vb[0] == va[0] and vb < va):
            out[attr] = vb
    return out


def _transfer(
    node_events: Sequence, state: _State, collect: Optional[List[Tuple[str, int, int, int]]]
) -> _State:
    out = dict(state)
    for ev in node_events:
        if ev.kind == "read":
            out[ev.attr] = (READ, ev.line, 0)
        elif ev.kind == "suspend":
            for attr, (level, read_line, _) in list(out.items()):
                if level == READ:
                    out[attr] = (STALE, read_line, ev.line)
        elif ev.kind == "write":
            cur = out.get(ev.attr)
            if cur is not None and cur[0] == STALE and collect is not None:
                collect.append((ev.attr, cur[1], cur[2], ev.line))
            out[ev.attr] = (FRESH, 0, 0)
    return out


def analyze_cfg(cfg: CFG) -> List[Hazard]:
    """Fixpoint dataflow over one function's CFG; hazards deduplicated
    by ``(attribute, write line)``."""
    in_states: Dict[int, _State] = {cfg.entry: {}}
    worklist: List[int] = [cfg.entry]
    while worklist:
        idx = worklist.pop()
        out = _transfer(cfg.nodes[idx].events, in_states[idx], None)
        for succ in cfg.nodes[idx].succs:
            joined = _join(in_states.get(succ), out)
            if joined != in_states.get(succ):
                in_states[succ] = joined
                worklist.append(succ)
    seen: Set[Tuple[str, int]] = set()
    hazards: List[Hazard] = []
    for idx in sorted(in_states):
        found: List[Tuple[str, int, int, int]] = []
        _transfer(cfg.nodes[idx].events, in_states[idx], found)
        for attr, read_line, suspend_line, write_line in found:
            key = (attr, write_line)
            if key in seen:
                continue
            seen.add(key)
            hazards.append(
                Hazard(cfg.name, attr, read_line, suspend_line, write_line)
            )
    hazards.sort(key=lambda h: (h.write_line, h.attr))
    return hazards


def analyze_function(
    fn: ast.AsyncFunctionDef, regions: Sequence[Region] = ()
) -> List[Hazard]:
    """Hazards of one async function, minus declared critical sections."""
    all_regions = list(regions) + lock_regions(fn)
    out = []
    for hazard in analyze_cfg(build_cfg(fn)):
        if not any(region.covers(hazard) for region in all_regions):
            out.append(hazard)
    return out


def analyze_module(
    tree: ast.Module, source: str
) -> Tuple[List[Hazard], List[int]]:
    """All hazards of a module's async functions + malformed markers."""
    regions, malformed = atomic_regions(tree, source)
    hazards: List[Hazard] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            hazards.extend(analyze_function(node, regions))
    hazards.sort(key=lambda h: (h.write_line, h.attr))
    return hazards, malformed


def suspension_summary(tree: ast.Module) -> Tuple[int, int]:
    """``(async function count, distinct suspension lines)`` of a module
    — the schedule explorer prints this next to its sweep so the static
    and dynamic halves of the check are visibly aligned."""
    n_funcs = 0
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            n_funcs += 1
            lines.update(build_cfg(node).suspension_lines())
    return n_funcs, len(lines)


class AwaitAtomicityRule(Rule):
    """No read-modify-write of shared ``self`` state across an ``await``.

    Scope: :mod:`repro.service` (the asyncio layer; the simulator is
    single-threaded-synchronous and exempt by construction).  Fires when
    an async function reads ``self.<attr>``, may suspend, and then
    writes the same attribute without an intervening re-read — unless
    read, suspension, and write all sit inside one declared critical
    section (``async with self.<lock>:`` or ``# lint: atomic — reason``).
    A marker missing its reason is reported instead of honoured.
    """

    name = "await-atomicity"
    summary = (
        "read-modify-write of shared self.<attr> state across an await "
        "in repro.service without a declared critical section"
    )
    scoped_prefixes = ("repro.service",)
    module_allow = True

    def scan(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module.startswith(self.scoped_prefixes):
            return
        hazards, malformed = analyze_module(ctx.tree, ctx.source)
        for line in malformed:
            yield Finding(
                self.name,
                ctx.path,
                line,
                "atomic region is missing its mandatory reason "
                "(write '# lint: atomic — <why this section cannot "
                "interleave>')",
            )
        for h in hazards:
            yield Finding(
                self.name,
                ctx.path,
                h.write_line,
                f"in {h.function!r}: self.{h.attr} is read on line "
                f"{h.read_line} and written here, but the task can "
                f"suspend at line {h.suspend_line} in between — another "
                f"task may observe or mutate self.{h.attr} in the gap "
                f"and this write clobbers it; keep the read-modify-write "
                f"await-free, re-read after the await, hold a lock "
                f"(async with) around all three, or declare the block "
                f"'# lint: atomic — <reason>'",
            )


__all__ = [
    "AwaitAtomicityRule",
    "Hazard",
    "Region",
    "analyze_cfg",
    "analyze_function",
    "analyze_module",
    "atomic_regions",
    "lock_regions",
    "suspension_summary",
]
