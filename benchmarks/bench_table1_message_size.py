"""E2 — Table I, *message size* row.

Paper: total control-metadata bytes are O(n²pw + nr(n−p)) for Full-Track,
amortized O(npw + r(n−p)) for Opt-Track (the KS pruning keeps logs O(n)
amortized), O(nwd) for Opt-Track-CRP and O(n²w) for OptP.

Measured shapes:
  * Opt-Track ≪ Full-Track at the same (n, p, workload);
  * Opt-Track-CRP < OptP;
  * across an n-sweep, Full-Track's *per-update* metadata grows ~n²
    while Opt-Track's grows ~n.
"""

import pytest

from _bench_utils import run_protocol

N, Q, P, OPS, WRITE_RATE = 10, 40, 3, 80, 0.4
SWEEP_NS = (6, 10, 14, 18)


@pytest.fixture(scope="module")
def measured():
    return {
        protocol: run_protocol(protocol, n=N, q=Q, p=P, ops=OPS, write_rate=WRITE_RATE)
        for protocol in ("full-track", "opt-track", "opt-track-crp", "optp")
    }


@pytest.fixture(scope="module")
def n_sweep():
    out = {}
    for n in SWEEP_NS:
        for protocol in ("full-track", "opt-track"):
            r = run_protocol(
                protocol, n=n, q=Q, p=P, ops=OPS, write_rate=WRITE_RATE, seed=2
            )
            m = r.metrics
            out[(protocol, n)] = (
                m.message_bytes["update"] / max(m.message_counts["update"], 1)
            )
    return out


class TestShape:
    def test_opt_track_much_smaller_than_full_track(self, measured):
        ft = measured["full-track"].metrics.total_message_bytes
        ot = measured["opt-track"].metrics.total_message_bytes
        assert ot < ft / 2  # paper: n x n matrix vs amortized-O(n) log

    def test_crp_smaller_than_optp(self, measured):
        crp = measured["opt-track-crp"].metrics.total_message_bytes
        optp = measured["optp"].metrics.total_message_bytes
        assert crp < optp  # O(nwd), d << n, vs O(n^2 w)

    def test_full_track_per_update_grows_quadratically(self, n_sweep):
        lo, hi = SWEEP_NS[0], SWEEP_NS[-1]
        growth = n_sweep[("full-track", hi)] / n_sweep[("full-track", lo)]
        quadratic = (hi / lo) ** 2
        assert growth == pytest.approx(quadratic, rel=0.30)

    def test_opt_track_per_update_grows_subquadratically(self, n_sweep):
        # amortized O(n): far below the matrix clock's n^2 growth
        lo, hi = SWEEP_NS[0], SWEEP_NS[-1]
        growth = n_sweep[("opt-track", hi)] / n_sweep[("opt-track", lo)]
        quadratic = (hi / lo) ** 2
        assert growth < quadratic * 0.6

    def test_opt_track_always_below_full_track_in_sweep(self, n_sweep):
        for n in SWEEP_NS:
            assert n_sweep[("opt-track", n)] < n_sweep[("full-track", n)]


def test_bench_table1_message_size(benchmark):
    """Timed regeneration of the message-size comparison at n=10."""

    def run():
        return {
            p: run_protocol(p, n=N, q=Q, p=P, ops=OPS, write_rate=WRITE_RATE)
            for p in ("full-track", "opt-track")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["bytes"] = {
        p: r.metrics.total_message_bytes for p, r in results.items()
    }
