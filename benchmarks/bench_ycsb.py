"""E14 — YCSB core workloads across the protocol suite.

Standard cloud-storage mixes (adapted to the read/write register model —
see :mod:`repro.workload.ycsb`) run over every protocol, confirming that
the paper's message-count economics hold on recognized workloads, not just
synthetic mixes:

  * workload A (update-heavy, 50/50): partial replication wins big;
  * workload B (read-mostly, 95/5): sits near the Figure-4 crossover — the
    fetch traffic of partial replication roughly cancels its multicast
    savings;
  * workload C (read-only): full replication's best case (zero messages
    after warm-up vs a remote-read stream).
"""

import pytest

from repro.sim.cluster import Cluster, ClusterConfig
from repro.workload.ycsb import ycsb

N, Q, P = 10, 30, 3
PARTIAL = {"full-track", "opt-track"}


def run(workload: str, protocol: str, seed=4):
    cfg = ClusterConfig(
        n_sites=N,
        n_variables=Q,
        protocol=protocol,
        replication_factor=P if protocol in PARTIAL else None,
        seed=seed,
        think_time=2.0,
    )
    cluster = Cluster(cfg)
    wl = ycsb(workload, N, cluster.variables, ops_per_site=60, seed=seed)
    return cluster.run(wl, check=False)


@pytest.fixture(scope="module")
def grid():
    out = {}
    for w in ("a", "b", "c"):
        for protocol in ("opt-track", "opt-track-crp"):
            out[(w, protocol)] = run(w, protocol)
    return out


class TestShape:
    def test_update_heavy_partial_wins(self, grid):
        partial = grid[("a", "opt-track")].metrics.total_messages
        full = grid[("a", "opt-track-crp")].metrics.total_messages
        assert partial < full / 1.5

    def test_read_only_full_wins(self, grid):
        partial = grid[("c", "opt-track")].metrics.total_messages
        full = grid[("c", "opt-track-crp")].metrics.total_messages
        assert full == 0  # no writes, all reads local
        assert partial > 0  # remote fetches

    def test_read_mostly_near_crossover(self, grid):
        # w_rate 0.05 < 2/(2+10) = 0.167: full replication should win,
        # but by far less than on workload C
        partial = grid[("b", "opt-track")].metrics.total_messages
        full = grid[("b", "opt-track-crp")].metrics.total_messages
        assert full < partial < full * 6

    def test_all_consistent(self):
        for w in ("a", "d", "f"):
            for protocol in ("opt-track", "optp"):
                cluster_result = run(w, protocol)
                # re-run small with checking on
                cfg = ClusterConfig(
                    n_sites=4,
                    n_variables=8,
                    protocol=protocol,
                    replication_factor=2 if protocol in PARTIAL else None,
                    seed=9,
                )
                cluster = Cluster(cfg)
                wl = ycsb(w, 4, cluster.variables, ops_per_site=25, seed=9)
                assert cluster.run(wl).ok, (w, protocol)


def test_bench_ycsb(benchmark):
    def once():
        return {
            (w, p): run(w, p).metrics.total_messages
            for w in ("a", "b", "c")
            for p in ("opt-track", "opt-track-crp")
        }

    counts = benchmark.pedantic(once, rounds=1, iterations=1)
    benchmark.extra_info["messages"] = {f"{w}/{p}": c for (w, p), c in counts.items()}
