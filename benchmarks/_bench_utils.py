"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper's evaluation
(EXPERIMENTS.md maps them).  Simulation-backed benches run once per
measurement (``rounds=1``) — the interesting output is the *measured
metric series* attached to ``benchmark.extra_info``, with assertions
pinning the paper's qualitative shape (who wins, roughly by how much,
where crossovers fall).
"""

from __future__ import annotations

from typing import Optional

from repro.sim.cluster import Cluster, ClusterConfig, RunResult
from repro.workload.generator import WorkloadConfig, generate, op_counts

PARTIAL = {"full-track", "opt-track"}


def run_protocol(
    protocol: str,
    n: int = 10,
    q: int = 40,
    p: int = 3,
    ops: int = 80,
    write_rate: float = 0.4,
    seed: int = 5,
    **cluster_kw,
) -> RunResult:
    """One measured run of ``protocol`` on the standard workload."""
    cfg = ClusterConfig(
        n_sites=n,
        n_variables=q,
        protocol=protocol,
        replication_factor=p if protocol in PARTIAL else None,
        seed=seed,
        think_time=2.0,
        **cluster_kw,
    )
    cluster = Cluster(cfg)
    workload = generate(
        WorkloadConfig(
            n_sites=n,
            ops_per_site=ops,
            write_rate=write_rate,
            placement=cluster.placement,
            seed=seed + 1,
        )
    )
    result = cluster.run(workload, check=False)
    return result


def workload_counts(n, ops, write_rate, q, seed=5):
    cfg = ClusterConfig(n_sites=n, n_variables=q, protocol="opt-track", seed=seed)
    cluster = Cluster(cfg)
    wl = generate(
        WorkloadConfig(
            n_sites=n,
            ops_per_site=ops,
            write_rate=write_rate,
            placement=cluster.placement,
            seed=seed + 1,
        )
    )
    return op_counts(wl)
