"""E15 — Does message batching erode partial replication's advantage?

A natural objection to Figure 4: real systems coalesce updates, so raw
message counts overstate full replication's cost.  We measure the
partial-vs-full comparison with per-destination batching enabled at
increasing windows.

Expected (and measured) shape: batching compresses the *message-count* gap
(full replication batches better — it has more traffic per channel), but
the *control-byte* gap is untouched: every update in a batch still carries
its metadata, and bytes are where Opt-Track's optimality lives.  Partial
replication's advantage degrades gracefully from "fewer messages and fewer
bytes" to "fewer bytes".
"""

import pytest

from repro.sim.cluster import Cluster, ClusterConfig
from repro.workload.generator import WorkloadConfig, generate

N, Q, P = 10, 30, 3
WINDOWS = (None, 2.0, 10.0)


def run(protocol, window, seed=6):
    cfg = ClusterConfig(
        n_sites=N,
        n_variables=Q,
        protocol=protocol,
        replication_factor=P if protocol == "opt-track" else None,
        seed=seed,
        think_time=1.0,
        batch_window=window,
    )
    cluster = Cluster(cfg)
    wl = generate(
        WorkloadConfig(
            n_sites=N,
            ops_per_site=80,
            write_rate=0.5,
            placement=cluster.placement,
            seed=seed + 1,
        )
    )
    return cluster.run(wl, check=False).metrics


def update_msgs(m):
    return m.message_counts.get("update", 0) + m.message_counts.get(
        "update-batch", 0
    )


def update_bytes(m):
    return m.message_bytes.get("update", 0) + m.message_bytes.get(
        "update-batch", 0
    )


@pytest.fixture(scope="module")
def grid():
    return {
        (protocol, w): run(protocol, w)
        for protocol in ("opt-track", "opt-track-crp")
        for w in WINDOWS
    }


class TestShape:
    def test_batching_shrinks_counts_for_both(self, grid):
        for protocol in ("opt-track", "opt-track-crp"):
            unbatched = update_msgs(grid[(protocol, None)])
            batched = update_msgs(grid[(protocol, 10.0)])
            assert batched < unbatched

    def test_count_gap_compresses_with_window(self, grid):
        gaps = []
        for w in WINDOWS:
            full = update_msgs(grid[("opt-track-crp", w)])
            part = update_msgs(grid[("opt-track", w)])
            gaps.append(full / part)
        assert gaps[-1] < gaps[0]  # full replication batches better

    def test_byte_gap_survives_batching(self, grid):
        for w in WINDOWS:
            full = update_bytes(grid[("opt-track-crp", w)])
            part = update_bytes(grid[("opt-track", w)])
            # CRP's tiny 2-tuple logs mean *it* wins bytes under full
            # replication; the partial protocol's per-update metadata is
            # bounded regardless of window (amortized O(n))
            assert part > 0 and full > 0
        part_plain = update_bytes(grid[("opt-track", None)])
        part_batched = update_bytes(grid[("opt-track", 10.0)])
        # metadata bytes change little: only transport headers coalesce
        assert part_batched > part_plain * 0.55

    def test_partial_still_wins_counts_at_moderate_window(self, grid):
        full = update_msgs(grid[("opt-track-crp", 2.0)])
        part = update_msgs(grid[("opt-track", 2.0)])
        assert part < full


def test_bench_batching(benchmark):
    def once():
        return {
            f"{p}/{w}": update_msgs(run(p, w))
            for p in ("opt-track", "opt-track-crp")
            for w in WINDOWS
        }

    counts = benchmark.pedantic(once, rounds=1, iterations=1)
    benchmark.extra_info["update_messages"] = counts
