"""E11 — Ablation (beyond the paper): what do the remote-read correctness
completions cost?

DESIGN.md §2a documents two gaps a literal reading of the paper leaves
open under partial replication (unsafe fetch serving; remote-read
knowledge outrunning the local replica) and our completions (strict
fetches + strict local reads, on by default).  This benchmark quantifies
their price on an honest WAN workload:

  * read latency: strict reads can stall waiting for in-flight updates;
  * message bytes: strict fetches piggyback an O(n) dependency summary;
  * message count: unchanged (no extra messages, only deferred replies).

And their value: with strict mode off, the checker finds violations on
adversarial schedules (the integration tests pin specific ones; here we
confirm the aggregate safety/cost trade).
"""

import numpy as np
import pytest

from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.latency import MatrixLatency
from repro.workload.generator import WorkloadConfig, generate

N = 5


def run(protocol, strict, seed=0, check=False):
    rng = np.random.default_rng(seed)
    base = rng.uniform(1.0, 120.0, size=(N, N))
    np.fill_diagonal(base, 0.0)
    cfg = ClusterConfig(
        n_sites=N,
        n_variables=12,
        protocol=protocol,
        replication_factor=2,
        latency=MatrixLatency(base, jitter_sigma=0.2),
        strict_remote_reads=strict,
        seed=seed,
        think_time=1.0,
    )
    cluster = Cluster(cfg)
    wl = generate(
        WorkloadConfig(
            n_sites=N,
            ops_per_site=80,
            write_rate=0.5,
            placement=cluster.placement,
            seed=seed + 9,
        )
    )
    result = cluster.run(wl, check=check)
    return result


@pytest.fixture(scope="module")
def pairs():
    out = {}
    for protocol in ("full-track", "opt-track"):
        for strict in (True, False):
            rs = [run(protocol, strict, seed) for seed in range(4)]
            out[(protocol, strict)] = rs
    return out


def total_read_latency(results):
    return sum(
        r.metrics.op_latency["read-local"]["total"]
        + r.metrics.op_latency["read-remote"]["total"]
        for r in results
    )


class TestCost:
    @pytest.mark.parametrize("protocol", ["full-track", "opt-track"])
    def test_message_count_unchanged(self, pairs, protocol):
        strict = [r.metrics.total_messages for r in pairs[(protocol, True)]]
        lenient = [r.metrics.total_messages for r in pairs[(protocol, False)]]
        assert strict == lenient

    @pytest.mark.parametrize("protocol", ["full-track", "opt-track"])
    def test_read_latency_overhead_is_bounded(self, pairs, protocol):
        strict = total_read_latency(pairs[(protocol, True)])
        lenient = total_read_latency(pairs[(protocol, False)])
        assert strict >= lenient * 0.99  # stalls only add latency...
        assert strict <= lenient * 3.0  # ...and modestly so

    def test_fetch_bytes_overhead_linear_not_quadratic(self, pairs):
        # the strict fetch carries an O(n) summary on the request; the
        # reply's metadata (already charged by the paper) dominates
        strict = sum(
            r.metrics.message_bytes["fetch"] for r in pairs[("full-track", True)]
        )
        lenient = sum(
            r.metrics.message_bytes["fetch"] for r in pairs[("full-track", False)]
        )
        n_fetches = sum(
            r.metrics.message_counts["fetch"] for r in pairs[("full-track", True)]
        )
        per_fetch_extra = (strict - lenient) / max(n_fetches, 1)
        assert per_fetch_extra <= 8 * N + 1  # one clock column


class TestValue:
    @pytest.mark.parametrize("protocol", ["full-track", "opt-track"])
    def test_strict_mode_always_consistent(self, protocol):
        for seed in range(4):
            assert run(protocol, strict=True, seed=seed, check=True).ok


def test_bench_ablation_strict_reads(benchmark):
    def once():
        s = run("opt-track", True, 1)
        l = run("opt-track", False, 1)
        return s, l

    s, l = benchmark.pedantic(once, rounds=1, iterations=1)
    benchmark.extra_info["strict_read_latency_ms"] = round(
        total_read_latency([s]), 1
    )
    benchmark.extra_info["lenient_read_latency_ms"] = round(
        total_read_latency([l]), 1
    )
    benchmark.extra_info["strict_bytes"] = s.metrics.total_message_bytes
    benchmark.extra_info["lenient_bytes"] = l.metrics.total_message_bytes
