"""E3b — Table I time complexity, verified in *operation counts*.

Companion to bench_table1_time.py: wall-clock constants (numpy memcpy,
Python object construction) mask the paper's asymptotics at realistic n,
so here we count the abstract operations (clock cells + log records
touched, via :mod:`repro.metrics.opcount`) that Section IV's analysis
talks about, using the protocols' live structure sizes:

  * full-track write/read  ~ n²            (matrix snapshot / merge)
  * opt-track write        ~ |log|·p       (one pruned copy per replica)
    with the *measured* |log| far below its O(n) worst case (the
    amortized-O(n) message result transfers to op counts)
  * opt-track-crp write    ~ n, read ~ 1
  * optp write/read        ~ n
"""

import pytest

from repro.core.base import ProtocolConfig, protocol_class
from repro.metrics.opcount import OpCountingSession
from repro.store.placement import full as full_placement
from repro.store.placement import round_robin

PARTIAL = {"full-track", "opt-track"}


def run_session(protocol: str, n: int, p: int = 3, q: int = 30, rounds: int = 60):
    placement = (
        round_robin(n, q, p) if protocol in PARTIAL else full_placement(n, q)
    )
    proto = protocol_class(protocol)(
        ProtocolConfig(n=n, site=0, replicas_of=placement)
    )
    session = OpCountingSession(proto)
    local_vars = [v for v in placement if proto.locally_replicates(v)]
    # warm up: touch every local variable so LastWriteOn is populated,
    # then measure steady-state costs only
    for var in local_vars:
        session.write(var, "warm")
        session.read_local(var)
    from repro.metrics.opcount import OpCounts

    session.counts = OpCounts()
    for i in range(rounds):
        var = local_vars[i % len(local_vars)]
        session.write(var, i)
        session.read_local(var)
        session.read_local(local_vars[(i + 1) % len(local_vars)])
    return session.counts


class TestWriteCounts:
    def test_full_track_write_is_n_squared(self):
        for n in (8, 16, 32):
            counts = run_session("full-track", n)
            assert counts.mean_write_ops == pytest.approx(n * n, rel=0.05)

    def test_crp_write_is_linear(self):
        c8 = run_session("opt-track-crp", 8).mean_write_ops
        c32 = run_session("opt-track-crp", 32).mean_write_ops
        assert c32 / c8 == pytest.approx(32 / 8, rel=0.35)

    def test_optp_write_is_linear(self):
        c8 = run_session("optp", 8).mean_write_ops
        c32 = run_session("optp", 32).mean_write_ops
        assert c32 / c8 == pytest.approx(32 / 8, rel=0.15)

    def test_opt_track_write_far_below_worst_case(self):
        # worst case O(n^2 p); measured |log| stays small under pruning
        n, p = 24, 3
        counts = run_session("opt-track", n, p=p)
        assert counts.mean_write_ops < n * n * p / 4

    def test_opt_track_write_grows_slower_than_full_track(self):
        ratios = []
        for n in (8, 32):
            ot = run_session("opt-track", n).mean_write_ops
            ft = run_session("full-track", n).mean_write_ops
            ratios.append(ft / ot)
        assert ratios[1] > ratios[0]  # the n^2 matrix pulls away


class TestReadCounts:
    def test_crp_read_is_constant(self):
        for n in (8, 32, 64):
            counts = run_session("opt-track-crp", n)
            assert counts.mean_read_ops == 1.0

    def test_full_track_read_is_n_squared(self):
        for n in (8, 32):
            counts = run_session("full-track", n)
            assert counts.mean_read_ops == pytest.approx(n * n, rel=0.05)

    def test_optp_read_is_linear(self):
        c8 = run_session("optp", 8).mean_read_ops
        c32 = run_session("optp", 32).mean_read_ops
        assert c32 / c8 == pytest.approx(4.0, rel=0.1)

    def test_table_ordering_holds(self):
        n = 16
        crp = run_session("opt-track-crp", n).mean_read_ops
        optp = run_session("optp", n).mean_read_ops
        ft = run_session("full-track", n).mean_read_ops
        assert crp < optp < ft


def test_bench_table1_opcounts(benchmark):
    def once():
        return {
            p: (
                run_session(p, 16).mean_write_ops,
                run_session(p, 16).mean_read_ops,
            )
            for p in ("full-track", "opt-track", "opt-track-crp", "optp")
        }

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    benchmark.extra_info["mean_ops_write_read_n16"] = {
        k: (round(w, 1), round(r, 1)) for k, (w, r) in result.items()
    }
