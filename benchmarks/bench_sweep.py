"""Parallel-runner benchmark: serial vs. fan-out vs. warm cache.

Regenerates ``BENCH_sweeps.json`` (checked in at the repo root) — the
measured basis for the runner section of docs/performance.md.  The
subject is the Figure-4 simulation grid (n=10: five p lines x ten write
rates = 50 cells) executed three ways through
:func:`repro.analysis.runner.run_cells`:

1. ``serial``        — one process, no cache (the pre-runner baseline)
2. ``parallel_cold`` — ``--jobs N`` worker fan-out into an empty cache
3. ``cache_warm``    — same command again; every cell is a cache hit

The report records wall-clock per mode, how many cells were simulated
vs. served from cache, the resulting speedups, and ``cpu_count`` —
parallel speedup is bounded by physical cores, so the warm-cache number
is the portable one.  All three modes must return row-for-row identical
results; the report carries that check as ``rows_identical``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_sweep.py [--fast] [--jobs N] [--out PATH]

or via make::

    make sweep-bench

Also exposes a pytest smoke test so the harness itself cannot rot: a
fast pass must simulate every cell cold, simulate nothing warm, and
produce identical rows in all three modes.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.fig4 import default_ps, fig4_specs
from repro.analysis.runner import CellSpec, run_cells

#: the full Figure-4 grid (50 cells at n=10) and the smoke-test grid
GRID = dict(n=10, ops_per_site=60, q=40)
FAST_GRID = dict(n=5, ps=(2, 5), write_rates=(0.2, 0.5, 0.8), ops_per_site=10, q=8)


def _measure(
    specs: Sequence[CellSpec],
    jobs: Optional[int],
    cache_dir: Optional[str],
) -> Dict[str, Any]:
    cached = 0

    def progress(done: int, total: int, outcome) -> None:
        nonlocal cached
        cached += outcome.cached

    start = time.perf_counter()
    outcomes = run_cells(specs, jobs=jobs, cache_dir=cache_dir, progress=progress)
    wall = time.perf_counter() - start
    return {
        "wall_s": round(wall, 3),
        "cells_simulated": len(specs) - cached,
        "cells_cached": cached,
        "rows": [o.row for o in outcomes],
    }


def bench_sweeps(fast: bool = False, jobs: int = 4, seed: int = 3) -> Dict[str, Any]:
    """Measure the three execution modes on the Figure-4 grid."""
    grid = dict(FAST_GRID if fast else GRID, seed=seed)
    specs = fig4_specs(**grid)
    report: Dict[str, Any] = {
        "grid": {
            **{k: v for k, v in grid.items() if k != "write_rates"},
            "ps": list(grid.get("ps", default_ps(grid["n"]))),
            "cells": len(specs),
        },
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
    }
    rows: List[List[Dict[str, Any]]] = []
    with tempfile.TemporaryDirectory(prefix="bench-sweep-cache-") as cache:
        for mode, mode_jobs, mode_cache in (
            ("serial", 1, None),
            ("parallel_cold", jobs, cache),
            ("cache_warm", jobs, cache),
        ):
            measured = _measure(specs, mode_jobs, mode_cache)
            rows.append(measured.pop("rows"))
            report[mode] = measured
    report["rows_identical"] = rows[0] == rows[1] == rows[2]
    serial_wall = report["serial"]["wall_s"]
    report["speedup_parallel_vs_serial"] = round(
        serial_wall / max(report["parallel_cold"]["wall_s"], 1e-9), 2
    )
    report["speedup_warm_vs_serial"] = round(
        serial_wall / max(report["cache_warm"]["wall_s"], 1e-9), 2
    )
    return report


def write_report(path: str, fast: bool = False, jobs: int = 4, seed: int = 3):
    report = bench_sweeps(fast=fast, jobs=jobs, seed=seed)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return report


def test_sweep_bench_smoke():
    report = bench_sweeps(fast=True, jobs=2)
    cells = report["grid"]["cells"]
    assert report["serial"]["cells_simulated"] == cells
    assert report["parallel_cold"]["cells_cached"] == 0
    assert report["cache_warm"]["cells_simulated"] == 0
    assert report["cache_warm"]["cells_cached"] == cells
    assert report["rows_identical"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_sweeps.json")
    parser.add_argument("--fast", action="store_true", help="6-cell grid")
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()
    report = write_report(args.out, fast=args.fast, jobs=args.jobs, seed=args.seed)
    print(json.dumps(report, indent=1, sort_keys=True))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
