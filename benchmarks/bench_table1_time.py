"""E3 — Table I, *time complexity* row.

Paper: per-operation costs are write O(n²)/read O(n²) for Full-Track,
write O(n²p)/read O(n²) for Opt-Track, write O(n)/read O(1) for
Opt-Track-CRP, and write O(n)/read O(n) for OptP.

These are genuine micro-benchmarks (pytest-benchmark timing of the pure
protocol state machines, no simulator): one write / one local read on a
warmed-up site.  Assertions check the *orderings* the paper derives —
CRP's ops are the cheapest, CRP reads beat OptP reads, and Full-Track's
matrix-clock write cost grows superlinearly in n while CRP's stays ~n.
"""

import pytest

from repro.core.base import ProtocolConfig, protocol_class
from repro.store.placement import full as full_placement
from repro.store.placement import round_robin

PARTIAL = {"full-track", "opt-track"}
PROTOCOLS = ("full-track", "opt-track", "opt-track-crp", "optp")


def make_site(protocol: str, n: int, q: int = 30, p: int = 3):
    placement = (
        round_robin(n, q, p) if protocol in PARTIAL else full_placement(n, q)
    )
    cls = protocol_class(protocol)
    proto = cls(ProtocolConfig(n=n, site=0, replicas_of=placement))
    # warm up: a few writes/reads so logs and LastWriteOn are populated
    for i in range(10):
        var = f"x{i % q}"
        if proto.locally_replicates(var):
            proto.write(var, i)
            proto.read_local(var)
    return proto


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_bench_write(benchmark, protocol):
    proto = make_site(protocol, n=16)
    var = next(v for v in proto.config.replicas_of if proto.locally_replicates(v))
    benchmark(proto.write, var, 42)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_bench_read_local(benchmark, protocol):
    proto = make_site(protocol, n=16)
    var = next(v for v in proto.config.replicas_of if proto.locally_replicates(v))
    proto.write(var, 1)
    benchmark(proto.read_local, var)


class TestOrderings:
    @staticmethod
    def op_time(protocol: str, n: int, op: str, repeats: int = 400) -> float:
        import time

        proto = make_site(protocol, n=n)
        var = next(
            v for v in proto.config.replicas_of if proto.locally_replicates(v)
        )
        proto.write(var, 0)
        start = time.perf_counter()
        if op == "write":
            for i in range(repeats):
                proto.write(var, i)
        else:
            for _ in range(repeats):
                proto.read_local(var)
        return (time.perf_counter() - start) / repeats

    def test_crp_read_fastest(self):
        # O(1) merge of a 2-tuple vs O(n)/O(n^2) merges elsewhere
        crp = self.op_time("opt-track-crp", n=32, op="read")
        for other in ("optp", "full-track", "opt-track"):
            assert crp < self.op_time(other, n=32, op="read")

    def test_crp_read_constant_in_n(self):
        t8 = self.op_time("opt-track-crp", n=8, op="read")
        t128 = self.op_time("opt-track-crp", n=128, op="read")
        assert t128 < t8 * 3  # O(1): flat up to noise

    def test_full_track_read_grows_with_n(self):
        # the O(n^2) matrix merge becomes visible despite numpy constants
        t16 = self.op_time("full-track", n=16, op="read")
        t256 = self.op_time("full-track", n=256, op="read")
        assert t256 > t16 * 4

    def test_partial_write_cost_independent_of_cluster_size(self):
        # the partial-replication payoff: a write touches p replicas, so
        # its cost does not grow with n (full replication's does — the
        # n-1-way fan-out).  Wall time for full-track's matrix snapshot is
        # memcpy-dominated, so the visible n-dependence at these sizes is
        # the fan-out, exactly the paper's message-count argument.
        ot16 = self.op_time("opt-track", n=16, op="write")
        ot128 = self.op_time("opt-track", n=128, op="write")
        assert ot128 < ot16 * 3
        crp16 = self.op_time("opt-track-crp", n=16, op="write")
        crp128 = self.op_time("opt-track-crp", n=128, op="write")
        assert crp128 > crp16 * 3  # ~linear fan-out

    def test_full_replication_write_grows_linearly(self):
        t16 = self.op_time("optp", n=16, op="write")
        t128 = self.op_time("optp", n=128, op="write")
        assert t16 * 2 < t128 < t16 * 40
