"""E16 — the price of session guarantees for migrating clients.

A client that re-attaches to a lagging datacenter must wait exactly as
long as the remaining replication lag for its causal past — no more (the
token never stalls a caught-up site) and no less (anything shorter would
break read-your-writes).  We measure time-to-first-read after migration:

* to a caught-up site: ~0 wait;
* to a site behind by a known WAN hop: the wait ≈ the remaining lag;
* plain (token-less) reads at the lagging site return instantly — and
  stale — which is the anomaly being paid for.
"""

import numpy as np
import pytest

from repro.ext.sessions import MigratingClient
from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.latency import MatrixLatency

SLOW = 200.0


def make_cluster(protocol="opt-track"):
    base = np.array(
        [
            [0.0, 1.0, SLOW],
            [1.0, 0.0, SLOW],
            [SLOW, SLOW, 0.0],
        ]
    )
    placement = {"x": (0, 2), "y": (1, 2)}
    return Cluster(
        ClusterConfig(
            n_sites=3,
            protocol=protocol,
            placement=placement,
            latency=MatrixLatency(base, jitter_sigma=0.0),
            seed=0,
        )
    )


def migration_wait(protocol, settle_first):
    cluster = make_cluster(protocol)
    client = MigratingClient(cluster, site=0)
    client.write("x", "mine")
    if settle_first:
        cluster.settle()
    client.migrate(2)
    t0 = cluster.sim.now
    value = client.read("x")
    assert value == "mine"
    wait = cluster.sim.now - t0
    cluster.settle()
    return wait


class TestShape:
    @pytest.mark.parametrize("protocol", ["full-track", "opt-track"])
    def test_no_wait_when_caught_up(self, protocol):
        assert migration_wait(protocol, settle_first=True) == pytest.approx(0.0)

    @pytest.mark.parametrize("protocol", ["full-track", "opt-track"])
    def test_wait_equals_remaining_lag(self, protocol):
        wait = migration_wait(protocol, settle_first=False)
        # the update left at t=0 and needs SLOW ms; the read starts at ~0
        assert wait == pytest.approx(SLOW, rel=0.05)

    def test_tokenless_read_is_instant_and_stale(self):
        cluster = make_cluster()
        cluster.session(0).write("x", "mine")
        # raw replica state at the lagging site: stale, no waiting
        assert cluster.protocols[2].local_value("x")[0] is None
        cluster.settle()

    def test_migration_itself_is_free(self):
        cluster = make_cluster()
        client = MigratingClient(cluster, site=0)
        t0 = cluster.sim.now
        client.migrate(2)
        client.migrate(0)
        assert cluster.sim.now == t0  # lazily enforced, per operation


def test_bench_migration(benchmark):
    def once():
        return {
            "caught_up_wait_ms": migration_wait("opt-track", True),
            "lagging_wait_ms": migration_wait("opt-track", False),
        }

    waits = benchmark.pedantic(once, rounds=1, iterations=1)
    benchmark.extra_info.update(waits)
