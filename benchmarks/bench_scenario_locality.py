"""E10 — Section V's systems argument: for write-intensive or
locality-skewed workloads, partial replication beats full replication on
*total* transmission, data payload included.

Paper: "In modern social networks, multimedia files like images and videos
are frequently shared...  full replication ... incurs a large overhead on
the underlying system for transmitting and storing these files."  We price
each update's data payload at 64 KiB (a photo) and measure total bytes on
the wire for the social-network and HDFS-like scenarios, partial vs full.
"""

import pytest

from repro.metrics.sizes import SizeModel
from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.topology import evenly_spread
from repro.workload.scenarios import hdfs_like, social_network

N = 10
PHOTO = SizeModel(value_bytes=64 * 1024)


def run_scenario(name, protocol):
    topology = evenly_spread(N)
    if name == "social":
        placement, wl = social_network(
            N, n_users=40, ops_per_site=100, replication_factor=2, topology=topology
        )
    else:
        placement, wl = hdfs_like(N, n_blocks=40, ops_per_site=100)
    if protocol == "opt-track-crp":
        placement = {k: tuple(range(N)) for k in placement}
    cfg = ClusterConfig(
        n_sites=N,
        protocol=protocol,
        placement=placement,
        topology=topology,
        seed=8,
        size_model=PHOTO,
        think_time=2.0,
    )
    result = Cluster(cfg).run(wl, check=False)
    return result.metrics


@pytest.fixture(scope="module")
def social():
    return {p: run_scenario("social", p) for p in ("opt-track", "opt-track-crp")}


@pytest.fixture(scope="module")
def hdfs():
    return {p: run_scenario("hdfs", p) for p in ("opt-track", "opt-track-crp")}


class TestSocialNetwork:
    def test_partial_wins_on_total_bytes(self, social):
        assert (
            social["opt-track"].total_message_bytes
            < social["opt-track-crp"].total_message_bytes
        )

    def test_partial_wins_on_message_count(self, social):
        # locality keeps most reads local even at p = 2
        assert (
            social["opt-track"].total_messages
            < social["opt-track-crp"].total_messages
        )

    def test_most_reads_are_local(self, social):
        m = social["opt-track"]
        assert m.ops["read-local"] > m.ops["read-remote"]


class TestHdfsLike:
    def test_partial_wins_big_on_write_heavy_load(self, hdfs):
        # w_rate 0.6 with p=3 vs n=10: update fan-out dominates
        partial = hdfs["opt-track"].total_message_bytes
        full = hdfs["opt-track-crp"].total_message_bytes
        assert partial < full / 2

    def test_update_payload_dominates(self, hdfs):
        m = hdfs["opt-track"]
        assert m.message_bytes["update"] > 10 * (
            m.message_bytes["fetch"] + m.message_bytes["fetch-reply"]
        )


def test_bench_scenario_locality(benchmark):
    def run():
        return {
            "social-partial": run_scenario("social", "opt-track").total_message_bytes,
            "social-full": run_scenario("social", "opt-track-crp").total_message_bytes,
            "hdfs-partial": run_scenario("hdfs", "opt-track").total_message_bytes,
            "hdfs-full": run_scenario("hdfs", "opt-track-crp").total_message_bytes,
        }

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["total_bytes_on_wire"] = totals
    benchmark.extra_info["social_savings"] = (
        1 - totals["social-partial"] / totals["social-full"]
    )
    benchmark.extra_info["hdfs_savings"] = (
        1 - totals["hdfs-partial"] / totals["hdfs-full"]
    )
