"""E5 — Figure 4: message count vs write rate, partial vs full replication.

Paper (Section V): with n = 10 sites, partial replication sends fewer
messages than full replication once ``w_rate > 2/(2+n) ≈ 0.167``; the plot
shows the five lines for p ∈ {1, 3, 5, 7, 10} fanning out from the
crossover region.

We regenerate both the analytic curves and a fully simulated sweep and
assert the shapes that define the figure:

  * at the lowest write rate, full replication (p = 10) sends the fewest
    messages; at high write rates the ordering fully inverts (lower p ⇒
    fewer messages);
  * each measured crossover falls in a band around the analytic 0.167
    (the simulation's discrete grid and p−1-vs-p multicast counting make
    it a band, not a point);
  * the full-replication series grows linearly in the write rate.
"""

import pytest

from repro.analysis.fig4 import fig4_analytic, fig4_simulated
from repro.analysis.model import crossover_write_rate

N = 10
WRITE_RATES = (0.05, 0.15, 0.25, 0.35, 0.5, 0.65, 0.8, 0.95)
PS = (1, 3, 5, 7, 10)


@pytest.fixture(scope="module")
def simulated():
    return fig4_simulated(
        n=N, ps=PS, ops_per_site=40, write_rates=WRITE_RATES, q=30, seed=1
    )


@pytest.fixture(scope="module")
def analytic():
    return fig4_analytic(n=N, ps=PS, total_ops=400, write_rates=WRITE_RATES)


class TestAnalytic:
    def test_crossover_constant(self):
        assert crossover_write_rate(N) == pytest.approx(1 / 6)

    def test_lines_cross_exactly_once(self, analytic):
        for p in (1, 3, 5, 7):
            diffs = [
                part - full
                for part, full in zip(analytic.series[p], analytic.series[N])
            ]
            # sign changes from + to - exactly once
            signs = [d > 0 for d in diffs]
            assert signs[0] and not signs[-1]
            assert sum(1 for a, b in zip(signs, signs[1:]) if a != b) == 1


class TestSimulatedShape:
    def test_full_cheapest_at_low_write_rate(self, simulated):
        low = {p: simulated.series[p][0] for p in PS}
        assert low[N] == min(low.values())

    def test_ordering_inverts_at_high_write_rate(self, simulated):
        high = {p: simulated.series[p][-1] for p in PS}
        assert high[1] < high[3] < high[5] < high[7] < high[N]

    def test_crossovers_bracket_the_paper_value(self, simulated):
        for p in (1, 3, 5, 7):
            wr = simulated.crossover_measured(p)
            assert wr is not None, f"p={p} never beat full replication"
            assert 0.05 <= wr <= 0.35, f"p={p} crossed at {wr}"

    def test_full_series_roughly_linear_in_write_rate(self, simulated):
        series = simulated.series[N]
        # nw: doubling the write rate ~doubles the count
        ratio = series[4] / max(series[1], 1)  # 0.5 vs 0.15
        assert ratio == pytest.approx(0.5 / 0.15, rel=0.35)

    def test_p1_series_decreases_with_write_rate(self, simulated):
        series = simulated.series[1]
        assert series[-1] < series[0]


def test_bench_fig4(benchmark):
    """Timed regeneration of the simulated Figure 4 sweep."""

    def run():
        return fig4_simulated(
            n=N, ps=(3, 10), ops_per_site=30, write_rates=(0.1, 0.4, 0.8), q=20, seed=2
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["series"] = {str(p): s for p, s in result.series.items()}
