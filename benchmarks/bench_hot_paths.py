"""Hot-path timing harness: drain strategies, DepLog micro-operations,
and the lifecycle-tracing overhead ledger.

Regenerates ``BENCH_hot_paths.json`` (checked in at the repo root) — the
measured basis for the before/after table in docs/performance.md and the
tracing cost table in docs/observability.md.  ``write_report`` (and so
``make bench``) fails when an attached no-op recorder costs more than 3%
over the untraced run — the guardrail keeping tracing zero-cost-off —
or when the always-on flight ring costs more than 20% (the guardrail
keeping the crash recorder cheap enough to leave on).

Run directly::

    PYTHONPATH=src python benchmarks/bench_hot_paths.py [--fast] [--out PATH]

or via the CLI / make::

    PYTHONPATH=src python -m repro.cli bench
    make bench

Also exposes a pytest smoke test so the harness itself cannot rot: a fast
pass must produce both strategies' throughput, identical message counts,
and non-degenerate micro timings.
"""

from __future__ import annotations

import argparse
import json

from repro.analysis.hotpaths import bench_hot_paths, write_report


def test_hot_path_bench_smoke():
    report = bench_hot_paths(fast=True)
    drain = report["drain"]
    assert drain["index"]["messages"] == drain["rescan"]["messages"]
    assert drain["index"]["ops_per_s"] > 0
    assert drain["rescan"]["ops_per_s"] > 0
    micro = report["deplog"]
    assert micro["records"] > 0
    for key, value in micro.items():
        assert value > 0, key
    overhead = report["trace_overhead"]
    assert set(overhead["wall_s"]) == {"disabled", "noop", "flight", "enabled"}
    assert all(w > 0 for w in overhead["wall_s"].values())
    # the budgets themselves are asserted by write_report / make bench;
    # the smoke test only checks the ledger exists and is well-formed
    assert "noop_within_budget" in overhead
    assert "flight_within_budget" in overhead


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_hot_paths.json")
    parser.add_argument("--fast", action="store_true", help="50 ops/site")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()
    report = write_report(args.out, fast=args.fast, seed=args.seed)
    print(json.dumps(report, indent=1, sort_keys=True))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
