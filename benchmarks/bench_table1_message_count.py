"""E1 — Table I, *message count* row.

Paper: Full-Track and Opt-Track send ``p·w + 2·r·(n−p)/n`` messages;
Opt-Track-CRP and OptP send ``n·w``.  We measure all four on a matched
workload and check the measured counts against the formulas (the
simulation counts a write's multicast as ``p−1`` or ``p`` copies depending
on whether the writer replicates the variable, so measurements sit within
a small band of the formula rather than on it).
"""

import pytest

from repro.analysis import model

from _bench_utils import run_protocol, workload_counts

N, Q, P, OPS, WRITE_RATE = 10, 40, 3, 80, 0.4


@pytest.fixture(scope="module")
def measured():
    out = {}
    for protocol in ("full-track", "opt-track", "opt-track-crp", "optp"):
        out[protocol] = run_protocol(
            protocol, n=N, q=Q, p=P, ops=OPS, write_rate=WRITE_RATE
        )
    return out


@pytest.fixture(scope="module")
def w_r():
    return workload_counts(N, OPS, WRITE_RATE, Q)


class TestShape:
    def test_partial_beats_full_at_this_write_rate(self, measured):
        # w_rate 0.4 is far above the crossover 2/(2+10) = 0.167
        partial = measured["opt-track"].metrics.total_messages
        full = measured["opt-track-crp"].metrics.total_messages
        assert partial < full

    def test_measured_factor_matches_prediction(self, measured, w_r):
        w, r = w_r
        predicted_partial = model.message_count_partial(N, P, w, r)
        predicted_full = model.message_count_full(N, w)
        measured_partial = measured["opt-track"].metrics.total_messages
        measured_full = measured["opt-track-crp"].metrics.total_messages
        predicted_ratio = predicted_full / predicted_partial
        measured_ratio = measured_full / measured_partial
        assert measured_ratio == pytest.approx(predicted_ratio, rel=0.35)

    def test_both_partial_protocols_same_count(self, measured):
        # message count depends on placement and workload, not metadata
        assert (
            measured["full-track"].metrics.total_messages
            == measured["opt-track"].metrics.total_messages
        )

    def test_both_full_protocols_same_count(self, measured):
        assert (
            measured["opt-track-crp"].metrics.total_messages
            == measured["optp"].metrics.total_messages
        )

    def test_full_replication_has_no_fetches(self, measured):
        assert measured["opt-track-crp"].metrics.message_counts["fetch"] == 0

    def test_partial_measured_within_formula_band(self, measured, w_r):
        # simulation sends p-1..p copies per write and 2 messages per
        # remote read; the paper's formula uses p copies and expectation
        # over uniform access — allow the corresponding band
        w, r = w_r
        got = measured["opt-track"].metrics.total_messages
        upper = model.message_count_partial(N, P, w, r) * 1.15
        lower = ((P - 1) * w) * 0.85
        assert lower <= got <= upper


def test_bench_table1_message_count(benchmark, w_r):
    """Timed regeneration of the message-count row (opt-track run)."""

    def run():
        return run_protocol("opt-track", n=N, q=Q, p=P, ops=OPS, write_rate=WRITE_RATE)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    w, r = w_r
    benchmark.extra_info["measured_messages"] = result.metrics.total_messages
    benchmark.extra_info["predicted_messages"] = model.message_count_partial(N, P, w, r)
    benchmark.extra_info["message_breakdown"] = result.metrics.message_counts
