"""Service wire throughput harness: the ``BENCH_service.json`` ledger.

Regenerates ``BENCH_service.json`` (checked in at the repo root) — the
measured basis for the service-throughput table in docs/performance.md
and the wire-profile numbers in docs/service.md.  Each cell drives the
closed-loop YCSB load generator against a whole in-process cluster, over
(loopback, tcp) x (json, binary, delta): the JSON cells pin the cluster
to the WIRE_VERSION 2 per-frame profile, the binary cells to the
WIRE_VERSION 3 batched profile, and the delta cells negotiate the full
WIRE_VERSION 4 metadata-lean profile.  A dedicated metadata-bound cell
reruns all three profiles where dependency-log metadata dominates the
wire and reports bytes/op.  ``write_report`` (and so
``make service-bench``) fails unless the binary profile beats the JSON
baseline by the codec-speedup floor on the reference loopback cell AND
the delta profile's bytes/op on the metadata cell stays under the
bytes-ratio ceiling of the binary profile's — the guardrails keeping
the fast wire measurably fast and the lean wire measurably lean.

The durability cell rides in the same ledger: the reference
loopback/binary config WAL-off and WAL-on in paired back-to-back
attempts (the guardrail judges the best paired ratio against the
WAL floor), plus the kill → restart → reconverge recovery microbench
timed per gap.

Run directly::

    PYTHONPATH=src python benchmarks/bench_service.py [--fast] [--out PATH]

or via the CLI / make::

    PYTHONPATH=src python -m repro.service.cli bench --ledger BENCH_service.json
    make service-bench

Also exposes a pytest smoke test so the harness itself cannot rot: a
fast pass must produce every matrix cell, sane latency quantiles, and a
well-formed guardrail block (fast mode exercises the machinery without
judging the speedup — the run is too small for batches to form).
"""

from __future__ import annotations

import argparse
import json

from repro.service.bench import (
    BYTES_RATIO_CEILING,
    DURABILITY_FLOOR,
    SPEEDUP_FLOOR,
    bench_service,
    write_report,
)


def test_service_bench_smoke():
    report = bench_service(fast=True)
    for transport in ("loopback", "tcp"):
        cell = report["cells"][transport]
        for codec in ("json", "binary", "delta"):
            row = cell[codec]
            assert row["ops"] > 0 and row["errors"] == 0, (transport, codec)
            assert row["ops_per_s"] > 0
            assert row["wire_bytes_sent"] > 0
            assert row["wire_bytes_per_op"] > 0
            assert row["latency_ms"]["put"]["p50"] is not None
            assert row["latency_ms"]["get"]["p99"] is not None
        assert cell["speedup"] > 0
    micro = report["codec_micro"]
    for frame in ("repl", "repl.ack"):
        assert micro[frame]["binary"]["body_bytes"] < micro[frame]["json"]["body_bytes"]
        assert micro[frame]["size_ratio"] > 1.0
    meta = report["metadata_cell"]
    for codec in ("json", "binary", "delta"):
        row = meta[codec]
        assert row["ops"] > 0 and row["errors"] == 0, codec
        assert row["wire_bytes_per_op"] > 0
    assert meta["bytes_ratio"] > 0
    assert meta["config"]["workload"] == "a"
    durability = report["durability_cell"]
    for side in ("off", "on"):
        row = durability[side]
        assert row["ops"] > 0 and row["errors"] == 0, side
        assert row["latency_ms"]["put"]["p50"] is not None
        assert row["latency_ms"]["put"]["p99"] is not None
    assert durability["on"]["wal"] == "on"
    assert durability["pairs"] and all(
        p["wal_ratio"] > 0 for p in durability["pairs"]
    )
    assert durability["wal_ratio"] == max(
        p["wal_ratio"] for p in durability["pairs"]
    )
    for row in durability["recovery"]:
        assert row["restart_ms"] > 0
        assert row["converge_ms"] >= 0
        assert row["replayed_records"] > 0
    rail = report["guardrail"]
    assert rail["speedup_floor"] == SPEEDUP_FLOOR
    assert rail["bytes_ratio_ceiling"] == BYTES_RATIO_CEILING
    assert rail["bytes_ratio"] == meta["bytes_ratio"]
    assert rail["durability_floor"] == DURABILITY_FLOOR
    assert rail["wal_ratio"] == durability["wal_ratio"]
    assert rail["transport"] == "loopback"
    # fast mode reports but does not enforce the rails; the full run
    # (make service-bench) is the enforcing gate
    assert rail["ok"] and not rail["enforced"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument(
        "--fast", action="store_true", help="single repeat, reduced load"
    )
    args = parser.parse_args()
    report = write_report(args.out, fast=args.fast)
    print(json.dumps(report, indent=1, sort_keys=True))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
