"""E8 — Ablation: optimal activation predicate A_OPT vs the original A_ORG.

Paper (Sections II-C, V): A_OPT tracks the ~>co relation (dependencies are
created only by *reading* a value), so it applies updates at the earliest
causally safe instant; A_ORG tracks Lamport's happened-before (message
receipt creates dependencies), manufacturing *false causality* that makes
receivers buffer updates longer.

We run the identical workload over an identical asymmetric WAN under OptP
(A_OPT) and Ahamad (A_ORG) — both full-replication vector-clock protocols
differing ONLY in when they merge the piggybacked clock — and measure the
activation delay (time updates sit buffered awaiting their predicate).
"""

import numpy as np
import pytest

from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.latency import MatrixLatency
from repro.workload.generator import WorkloadConfig, generate

N = 5


def asymmetric_wan(seed=0):
    rng = np.random.default_rng(seed)
    base = rng.uniform(2.0, 120.0, size=(N, N))
    np.fill_diagonal(base, 0.0)
    return MatrixLatency(base, jitter_sigma=0.0)


def run(protocol, seed):
    cfg = ClusterConfig(
        n_sites=N,
        n_variables=12,
        protocol=protocol,
        latency=asymmetric_wan(seed),
        seed=seed,
        think_time=1.0,
    )
    cluster = Cluster(cfg)
    wl = generate(
        WorkloadConfig(
            n_sites=N,
            ops_per_site=80,
            write_rate=0.5,
            placement=cluster.placement,
            seed=seed + 7,
        )
    )
    result = cluster.run(wl)
    assert result.ok
    return result.metrics.activation_delay


@pytest.fixture(scope="module")
def delays():
    out = {"optp": [], "ahamad": []}
    for seed in range(5):
        out["optp"].append(run("optp", seed))
        out["ahamad"].append(run("ahamad", seed))
    return out


class TestFalseCausalityCost:
    def test_a_org_total_buffering_exceeds_a_opt(self, delays):
        total_org = sum(d["total"] for d in delays["ahamad"])
        total_opt = sum(d["total"] for d in delays["optp"])
        assert total_org > total_opt

    def test_a_org_worse_or_equal_on_every_seed(self, delays):
        for d_org, d_opt in zip(delays["ahamad"], delays["optp"]):
            assert d_org["total"] >= d_opt["total"]

    def test_a_org_max_delay_dominates(self, delays):
        worst_org = max(d["max"] for d in delays["ahamad"])
        worst_opt = max(d["max"] for d in delays["optp"])
        assert worst_org >= worst_opt

    def test_both_still_causally_consistent(self):
        # false causality is a performance defect, never a safety one
        for protocol in ("optp", "ahamad"):
            run(protocol, seed=11)  # run() asserts result.ok


def test_bench_ablation_activation(benchmark):
    def once():
        return run("ahamad", 1), run("optp", 1)

    org, opt = benchmark.pedantic(once, rounds=1, iterations=1)
    benchmark.extra_info["a_org_total_delay_ms"] = org["total"]
    benchmark.extra_info["a_opt_total_delay_ms"] = opt["total"]
    benchmark.extra_info["false_causality_overhead"] = (
        (org["total"] - opt["total"]) / max(opt["total"], 1e-9)
    )
