"""E4 — Table I, *space complexity* row.

Paper: per-site control state is O(npq) worst / amortized O(pq) for the
partial-replication protocols (Opt-Track's pruning keeps logs small),
O(max(n, q)) for Opt-Track-CRP and O(nq) for OptP.

Measured shapes:
  * Opt-Track stores a fraction of Full-Track's bytes (pruned logs vs an
    n x n matrix per locally replicated variable);
  * Opt-Track-CRP ≪ OptP (2-tuples vs n-vectors per variable);
  * OptP's footprint grows ~n at fixed q; CRP's stays ~flat.
"""

import pytest

from _bench_utils import run_protocol

N, Q, P, OPS, WRITE_RATE = 10, 40, 3, 80, 0.4


def mean_space(protocol, n=N, q=Q, seed=5):
    r = run_protocol(protocol, n=n, q=q, p=P, ops=OPS, write_rate=WRITE_RATE, seed=seed)
    return r.metrics.space_bytes["mean_per_site"]


@pytest.fixture(scope="module")
def measured():
    return {
        protocol: mean_space(protocol)
        for protocol in ("full-track", "opt-track", "opt-track-crp", "optp")
    }


class TestShape:
    def test_opt_track_below_full_track(self, measured):
        assert measured["opt-track"] < measured["full-track"] / 1.5

    def test_crp_below_optp(self, measured):
        assert measured["opt-track-crp"] < measured["optp"] / 2

    def test_crp_smallest_overall(self, measured):
        assert measured["opt-track-crp"] == min(measured.values())

    def test_optp_grows_with_n(self):
        # O(nq): doubling n roughly doubles the per-site footprint
        s8 = mean_space("optp", n=8)
        s16 = mean_space("optp", n=16)
        assert s16 > s8 * 1.5

    def test_crp_flat_in_n(self):
        # O(max(n, q)) with q = 40 dominating: n barely matters
        s8 = mean_space("opt-track-crp", n=8)
        s16 = mean_space("opt-track-crp", n=16)
        assert s16 < s8 * 1.5

    def test_full_track_grows_with_n(self):
        # O(npq): an n x n matrix per locally replicated variable
        s8 = mean_space("full-track", n=8)
        s16 = mean_space("full-track", n=16)
        assert s16 > s8 * 2

    def test_opt_track_amortized_gap_widens_with_n(self):
        # worst-case bounds are equal (O(npq)); the amortized gap is the
        # pruning's doing and grows with n
        gap8 = mean_space("full-track", n=8) / mean_space("opt-track", n=8)
        gap16 = mean_space("full-track", n=16) / mean_space("opt-track", n=16)
        assert gap16 > gap8


def test_bench_table1_space(benchmark):
    def run():
        return {
            p: mean_space(p) for p in ("full-track", "opt-track", "opt-track-crp", "optp")
        }

    spaces = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["mean_space_per_site_bytes"] = spaces
