"""E12 — The paper's distributed write-processing variant (Section III-B).

    "At the expense of slightly larger message overhead, we can distribute
    the Write processing ... to the receivers' sites ...  This reduces the
    time complexity of a write operation from O(n² p) to O(n²)."

Both variants are implemented (``OptTrackProtocol(distributed_prune=...)``).
Measured trade:

  * write wall time: the distributed variant snapshots the log once
    instead of building one pruned copy per destination — faster writes,
    more so at higher replication factors;
  * message bytes: the shared snapshot keeps records the per-destination
    copies would have pruned — slightly larger updates;
  * observable behaviour: identical (the property suite separately fuzzes
    the variant for causal consistency).
"""

import time

import pytest

from repro.core.base import ProtocolConfig
from repro.core.opt_track import OptTrackProtocol
from repro.store.placement import round_robin

from _bench_utils import run_protocol

N, Q, P, OPS, WRITE_RATE = 10, 40, 5, 80, 0.5


def write_time(distributed: bool, n: int = 16, p: int = 8, repeats: int = 300) -> float:
    placement = round_robin(n, 30, p)
    proto = OptTrackProtocol(
        ProtocolConfig(n=n, site=0, replicas_of=placement),
        distributed_prune=distributed,
    )
    # populate the log with knowledge from several senders so the
    # per-destination pruning has real work to do
    from repro.core import bitsets

    for z in range(1, n):
        proto.log.add(z, 3, bitsets.full_mask(n) & ~bitsets.singleton(0))
    var = next(v for v in placement if proto.locally_replicates(v))
    start = time.perf_counter()
    for i in range(repeats):
        proto.write(var, i)
    return (time.perf_counter() - start) / repeats


@pytest.fixture(scope="module")
def runs():
    return {
        dist: run_protocol(
            "opt-track",
            n=N,
            q=Q,
            p=P,
            ops=OPS,
            write_rate=WRITE_RATE,
            protocol_kwargs={"distributed_prune": dist},
        )
        for dist in (False, True)
    }


class TestTrade:
    def test_distributed_writes_are_faster(self):
        plain = write_time(False)
        dist = write_time(True)
        assert dist < plain

    def test_distributed_messages_not_smaller(self, runs):
        plain = runs[False].metrics.message_bytes["update"]
        dist = runs[True].metrics.message_bytes["update"]
        assert dist >= plain  # "slightly larger message overhead"

    def test_overhead_is_slight(self, runs):
        plain = runs[False].metrics.message_bytes["update"]
        dist = runs[True].metrics.message_bytes["update"]
        assert dist <= plain * 1.6

    def test_message_counts_identical(self, runs):
        assert (
            runs[False].metrics.message_counts == runs[True].metrics.message_counts
        )


def test_bench_ablation_distributed_prune(benchmark):
    def once():
        return write_time(False, repeats=200), write_time(True, repeats=200)

    plain, dist = benchmark.pedantic(once, rounds=1, iterations=1)
    benchmark.extra_info["per_dest_prune_write_us"] = round(plain * 1e6, 2)
    benchmark.extra_info["distributed_prune_write_us"] = round(dist * 1e6, 2)
    benchmark.extra_info["write_speedup"] = round(plain / dist, 2)
