"""Reference-run driver shared by the hot-path benchmark and docs.

The docs/performance.md reference configuration: n=20 sites, q=100
variables, p=3 replicas, opt-track, 5 000 total operations (250 per
site), write rate 0.4.  The implementation lives in
:mod:`repro.analysis.hotpaths`; this wrapper keeps the historical
``python benchmarks/_refrun.py [strategy]`` entry point.
"""

from __future__ import annotations

from repro.analysis.hotpaths import reference_run

__all__ = ["reference_run"]


if __name__ == "__main__":
    import json
    import sys

    strategy = sys.argv[1] if len(sys.argv) > 1 else "index"
    print(json.dumps(reference_run(strategy), indent=1))
