"""E13 — Visibility latency: partial vs full replication (Section V's
latency discussion, measured from the other direction).

Full replication's selling point is local reads everywhere; its cost,
besides fan-out, is that every write must cross the *entire* WAN before it
is fully visible.  Region-affine partial replication places the p replicas
near the write's home, so full visibility arrives in regional time.

We run identical region-homed write workloads over the default 5-region
WAN and compare per-write full-visibility latency.
"""

import pytest

from repro.metrics.visibility import summarize_visibility
from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.topology import evenly_spread

N = 10
Q = 30


def run(protocol, placement_strategy, p, seed=3):
    topo = evenly_spread(N)
    cluster = Cluster(
        ClusterConfig(
            n_sites=N,
            n_variables=Q,
            protocol=protocol,
            replication_factor=p,
            placement_strategy=placement_strategy,
            topology=topo,
            seed=seed,
        )
    )
    # each variable written once, from its first replica (its home)
    for var in cluster.variables:
        writer = cluster.placement[var][0]
        cluster.session(writer).write(var, f"v-{var}")
    cluster.settle()
    return summarize_visibility(cluster.history, cluster.placement)


@pytest.fixture(scope="module")
def summaries():
    return {
        "partial-affine": run("opt-track", "region-affinity", 2),
        "partial-scattered": run("opt-track", "hashed", 2),
        "full": run("opt-track-crp", "round-robin", None),
    }


class TestShape:
    def test_all_writes_fully_visible(self, summaries):
        for name, s in summaries.items():
            assert s.n_fully_visible == s.n_writes == Q, name

    def test_affine_partial_beats_full(self, summaries):
        assert (
            summaries["partial-affine"].mean_latency
            < summaries["full"].mean_latency / 2
        )

    def test_even_scattered_partial_beats_full_on_p99(self, summaries):
        # fewer replicas to reach, even when placed blindly
        assert (
            summaries["partial-scattered"].p99_latency
            <= summaries["full"].p99_latency
        )

    def test_affinity_placement_helps(self, summaries):
        assert (
            summaries["partial-affine"].mean_latency
            <= summaries["partial-scattered"].mean_latency
        )


def test_bench_visibility(benchmark):
    def once():
        return {
            "partial-affine": run("opt-track", "region-affinity", 2).mean_latency,
            "full": run("opt-track-crp", "round-robin", None).mean_latency,
        }

    means = benchmark.pedantic(once, rounds=1, iterations=1)
    benchmark.extra_info["mean_full_visibility_ms"] = {
        k: round(v, 1) for k, v in means.items()
    }
