"""E9 — the amortized-O(n) claim for Opt-Track's logs (Section IV).

Paper: although Opt-Track's worst-case log and message overhead is O(n²),
Chandra et al.'s simulations of the underlying KS algorithm show the
*amortized* size is O(n), because the optimality conditions keep only
necessary destination information.  The paper transfers that claim to
Opt-Track ("the same optimization techniques are used").

We measure, across an n-sweep on long runs:
  * mean log records per update message — must stay well below n
    (each record is O(1) ids + its remaining destinations);
  * mean metadata bytes per update — must grow far slower than the n²
    growth of Full-Track's matrix clocks.
"""

import pytest

from _bench_utils import run_protocol

SWEEP = (6, 10, 14, 18, 22)
Q, P, OPS, WRITE_RATE = 40, 3, 120, 0.5


def per_update_bytes(protocol, n, seed=3):
    r = run_protocol(protocol, n=n, q=Q, p=P, ops=OPS, write_rate=WRITE_RATE, seed=seed)
    m = r.metrics
    return m.message_bytes["update"] / max(m.message_counts["update"], 1)


@pytest.fixture(scope="module")
def sweep():
    return {
        (protocol, n): per_update_bytes(protocol, n)
        for protocol in ("opt-track", "full-track")
        for n in SWEEP
    }


class TestAmortizedGrowth:
    def test_opt_track_growth_is_subquadratic(self, sweep):
        lo, hi = SWEEP[0], SWEEP[-1]
        growth = sweep[("opt-track", hi)] / sweep[("opt-track", lo)]
        assert growth < (hi / lo) ** 2 * 0.5

    def test_opt_track_growth_is_near_linear(self, sweep):
        lo, hi = SWEEP[0], SWEEP[-1]
        growth = sweep[("opt-track", hi)] / sweep[("opt-track", lo)]
        # amortized O(n): within a generous factor of linear
        assert growth <= (hi / lo) * 2.0

    def test_full_track_growth_is_quadratic(self, sweep):
        lo, hi = SWEEP[0], SWEEP[-1]
        growth = sweep[("full-track", hi)] / sweep[("full-track", lo)]
        assert growth == pytest.approx((hi / lo) ** 2, rel=0.3)

    def test_gap_widens_monotonically(self, sweep):
        gaps = [
            sweep[("full-track", n)] / sweep[("opt-track", n)] for n in SWEEP
        ]
        assert all(b > a for a, b in zip(gaps, gaps[1:]))

    def test_absolute_overhead_is_small(self, sweep):
        # at n=22, p=3: an update's metadata fits in a few hundred bytes —
        # the paper's "relatively low meta-data overheads"
        assert sweep[("opt-track", 22)] < 1000


def test_bench_amortized_log(benchmark):
    def run():
        return {n: per_update_bytes("opt-track", n) for n in SWEEP}

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["bytes_per_update_by_n"] = series
