PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast lint typecheck check bench bench-fast sweep-bench service-bench service-bench-fast table1 fig4 report trace-smoke serve-smoke interleave-smoke stats-smoke

test:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest -x -q tests/unit

# Protocol-aware static checks (import layering, DepLog copy-on-write
# discipline, determinism hazards, await-atomicity, protocol hook
# pairing); rule catalog in docs/static-analysis.md, repo-wide
# exceptions in .lint-allow.  Two invocations: the full catalog over the
# library, then the determinism rules over tests and benchmarks.  Both
# run --strict-allow, so dead suppressions and dead allowlist entries
# fail the build.
lint:
	$(PYTHON) -m repro.lint src/repro --strict-allow
	$(PYTHON) -m repro.lint tests benchmarks --select entropy-source,mutable-default,unordered-iteration --strict-allow

# mypy over the typed core (repro.core + repro.verify).  Gated on mypy
# being importable so offline checkouts without it still pass `make
# check`; CI always installs mypy, so the gate never hides errors there.
typecheck:
	@$(PYTHON) -c "import mypy" 2>/dev/null \
		&& $(PYTHON) -m mypy --config-file pyproject.toml \
		|| echo "mypy not installed; skipping typecheck (CI runs it)"

# Tier-1 suite (includes the runner determinism properties in
# tests/property/test_sweep_parallel.py) plus the benchmark-harness
# smoke tests, which live outside pytest's testpaths
check: lint typecheck
	$(PYTHON) -m pytest -x -q
	$(PYTHON) -m pytest -x -q benchmarks/bench_sweep.py benchmarks/bench_hot_paths.py benchmarks/bench_service.py

# End-to-end tracing smoke: record a lifecycle trace under three
# protocols, replay each through the causal sanitizer oracle, render the
# timeline reports (examples/traced_run.py), then re-render one file via
# the CLI itself
trace-smoke:
	$(PYTHON) examples/traced_run.py --out .trace-smoke
	$(PYTHON) -m repro.cli trace .trace-smoke/opt-track.jsonl --replay --top 3

# Networked-service smoke: 3-site loopback cluster per protocol, YCSB
# burst with the causal sanitizer shadowing every apply/read, one site
# killed mid-run (reads must degrade to replicas with zero surfaced
# errors), clean shutdown.  Details in docs/service.md
serve-smoke:
	$(PYTHON) -m repro.service.cli smoke

# Observability smoke: in-process TCP cluster, negotiated sys.stats on
# every wire version, `repro-kv top --once --json`, a Prometheus scrape
# that must parse, and a chaos kill that must leave a flight-recorder
# dump `repro-sim trace` can render.  Details in docs/observability.md
# ("Live service observability")
stats-smoke:
	$(PYTHON) -m repro.service.cli stats-smoke

# Schedule-exploration smoke: sweep 50 seeded adversarial schedules
# (shuffled ready queue + preempting loopback) over a 3-site cluster
# with the causal sanitizer shadowing every apply.  The runtime half of
# the await-atomicity static rule; details in docs/static-analysis.md
interleave-smoke:
	$(PYTHON) -m repro.verify.schedules --seeds 50

# Regenerate BENCH_hot_paths.json (drain strategies + DepLog micro-ops +
# tracing overhead guardrails: fails if the no-op recorder costs > 3%
# or the always-on flight ring costs > 20% over the detached fast path)
bench:
	$(PYTHON) -m repro.cli bench --out BENCH_hot_paths.json

bench-fast:
	$(PYTHON) -m repro.cli bench --out BENCH_hot_paths.json --fast

# Regenerate BENCH_service.json (loopback + TCP ops/s and latency
# percentiles under both wire profiles, the codec microbench, and the
# durability cell: WAL-on vs WAL-off paired runs plus the kill →
# restart → reconverge recovery microbench) and fail unless the
# WIRE_VERSION 3 binary profile beats the JSON baseline by the
# codec-speedup floor on the reference loopback cell AND the
# WIRE_VERSION 4 delta profile spends at most the bytes-ratio ceiling of
# the binary profile's bytes/op on the metadata-bound cell AND WAL-on
# throughput stays above the durability floor of WAL-off.  Details in
# docs/performance.md ("Service throughput", "Metadata on the wire")
# and docs/durability.md
service-bench:
	$(PYTHON) -m repro.service.cli bench --ledger BENCH_service.json

service-bench-fast:
	$(PYTHON) -m repro.service.cli bench --ledger BENCH_service.json --fast

# Regenerate BENCH_sweeps.json (serial vs --jobs fan-out vs warm cache)
sweep-bench:
	$(PYTHON) benchmarks/bench_sweep.py --out BENCH_sweeps.json

table1:
	$(PYTHON) -m repro.cli table1

fig4:
	$(PYTHON) -m repro.cli fig4

report:
	$(PYTHON) -m repro.cli report
