PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast bench bench-fast table1 fig4 report

test:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest -x -q tests/unit

# Regenerate BENCH_hot_paths.json (drain strategies + DepLog micro-ops)
bench:
	$(PYTHON) -m repro.cli bench --out BENCH_hot_paths.json

bench-fast:
	$(PYTHON) -m repro.cli bench --out BENCH_hot_paths.json --fast

table1:
	$(PYTHON) -m repro.cli table1

fig4:
	$(PYTHON) -m repro.cli fig4

report:
	$(PYTHON) -m repro.cli report
